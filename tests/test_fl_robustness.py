"""Robustness and edge-case behaviour of the FL runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FLConfig, Simulation, build_federated_data
from repro.algorithms import available_strategies, build_strategy
from repro.data import ArrayDataset
from repro.fl import Client, FixedSampler


class TestNumericalHealth:
    @pytest.mark.parametrize("method", sorted(available_strategies()))
    def test_weights_stay_finite(self, tiny_data, small_config, method):
        """Every registered algorithm must produce finite weights & metrics."""
        strat = build_strategy(method, model="mlp", dataset="tiny")
        sim = Simulation(tiny_data, strat, small_config, model_name="mlp")
        hist = sim.run()
        for w in sim.server.weights:
            assert np.isfinite(w).all(), f"{method} produced non-finite weights"
        acc = hist.accuracies()
        assert np.isfinite(acc[~np.isnan(acc)]).all()
        sim.close()


class TestEdgeConfigurations:
    def test_batch_larger_than_shard(self, tiny_data):
        cfg = FLConfig(rounds=2, n_clients=6, clients_per_round=3,
                       batch_size=500, lr=0.05, seed=0)
        sim = Simulation(tiny_data, build_strategy("fedtrip"), cfg, model_name="mlp")
        hist = sim.run()
        assert len(hist) == 2
        sim.close()

    def test_full_participation(self, tiny_data):
        cfg = FLConfig(rounds=2, n_clients=6, clients_per_round=6,
                       batch_size=20, lr=0.05, seed=0)
        sim = Simulation(tiny_data, build_strategy("fedtrip"), cfg, model_name="mlp")
        sim.run()
        # Under full participation every client trains every round -> xi = 1.
        for c in sim.clients:
            assert c.state["last_round"] == 1
        sim.close()

    def test_single_client_per_round(self, tiny_data):
        cfg = FLConfig(rounds=3, n_clients=6, clients_per_round=1,
                       batch_size=20, lr=0.05, seed=0)
        sim = Simulation(tiny_data, build_strategy("fedavg"), cfg, model_name="mlp")
        hist = sim.run()
        assert all(len(r.selected) == 1 for r in hist.records)
        sim.close()

    def test_batch_size_one(self, tiny_data):
        cfg = FLConfig(rounds=1, n_clients=6, clients_per_round=2,
                       batch_size=1, lr=0.01, seed=0)
        sim = Simulation(tiny_data, build_strategy("fedavg"), cfg, model_name="mlp")
        sim.run()
        sim.close()

    def test_multiple_local_epochs_deterministic(self, tiny_data):
        cfg = FLConfig(rounds=2, n_clients=6, clients_per_round=3,
                       batch_size=20, local_epochs=3, lr=0.02, seed=3)
        runs = []
        for _ in range(2):
            sim = Simulation(tiny_data, build_strategy("fedtrip"), cfg, model_name="mlp")
            runs.append(sim.run().accuracies())
            sim.close()
        np.testing.assert_array_equal(runs[0], runs[1])


class TestFedTripStaleness:
    def test_xi_matches_participation_schedule(self, tiny_data):
        """Drive a fixed schedule and verify the xi each client sees."""
        from repro.algorithms import FedTrip

        observed = {}

        class ProbeFedTrip(FedTrip):
            def on_round_start(self, ctx):
                super().on_round_start(ctx)
                observed.setdefault(ctx.client_id, []).append(ctx.scratch["xi"])

        cfg = FLConfig(rounds=5, n_clients=6, clients_per_round=2,
                       batch_size=20, lr=0.02, seed=0)
        # Client 0 participates rounds 0,1,4; client 1 rounds 0,2; etc.
        schedule = [[0, 1], [0, 2], [1, 3], [2, 4], [0, 5]]
        sim = Simulation(tiny_data, ProbeFedTrip(mu=0.1), cfg, model_name="mlp",
                         sampler=FixedSampler(schedule, n_clients=6))
        sim.run()
        sim.close()
        assert observed[0] == [0.0, 1.0, 3.0]   # fresh, gap 1, gap 3
        assert observed[1] == [0.0, 2.0]        # fresh, gap 2
        assert observed[2] == [0.0, 2.0]
        assert observed[5] == [0.0]


class TestUpdateObservers:
    def test_observer_sees_pre_aggregation_weights(self, tiny_data, small_config):
        seen = []

        def observer(updates, global_weights):
            seen.append((len(updates), [w.copy() for w in global_weights]))

        sim = Simulation(tiny_data, build_strategy("fedavg"), small_config,
                         model_name="mlp")
        init = [w.copy() for w in sim.server.weights]
        sim.update_observers.append(observer)
        sim.run_round()
        assert len(seen) == 1
        assert seen[0][0] == small_config.clients_per_round
        # The observer got the *pre*-aggregation global weights.
        for a, b in zip(seen[0][1], init):
            np.testing.assert_array_equal(a, b)
        sim.close()

    def test_multiple_observers(self, tiny_data, small_config):
        calls = {"a": 0, "b": 0}
        sim = Simulation(tiny_data, build_strategy("fedavg"), small_config,
                         model_name="mlp")
        sim.update_observers.append(lambda u, g: calls.__setitem__("a", calls["a"] + 1))
        sim.update_observers.append(lambda u, g: calls.__setitem__("b", calls["b"] + 1))
        sim.run()
        assert calls["a"] == calls["b"] == small_config.rounds
        sim.close()


class TestDataEdgeCases:
    def test_uneven_shard_sizes_aggregate_by_weight(self):
        """FedAvg weighting respects different |D_k| (Eq. 2)."""
        data = build_federated_data("tiny", n_clients=4, partition="iid", seed=0)
        # Manually shrink one shard to force unequal sizes.
        data.client_shards[0] = data.client_shards[0][:10]
        cfg = FLConfig(rounds=1, n_clients=4, clients_per_round=4,
                       batch_size=20, lr=0.05, seed=0)
        sim = Simulation(data, build_strategy("fedavg"), cfg, model_name="mlp")
        sim.run()
        sim.close()

    def test_client_requires_nonempty_shard(self):
        with pytest.raises(ValueError):
            Client(0, ArrayDataset(np.zeros((0, 1), dtype=np.float32),
                                   np.zeros(0, dtype=np.int64)))
