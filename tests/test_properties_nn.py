"""Property-based tests on the NN substrate and compression codecs."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.fl import QuantizationCompressor, TopKCompressor
from repro.nn.functional import conv_output_size, im2col


class TestConvProperties:
    @given(
        st.integers(1, 3),   # batch
        st.integers(1, 3),   # in channels
        st.integers(1, 4),   # out channels
        st.sampled_from([1, 3]),          # kernel
        st.integers(1, 2),   # stride
        st.integers(0, 2),   # padding
        st.integers(5, 9),   # spatial
        st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_conv_matches_naive_reference(self, n, ci, co, k, stride, pad, hw, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, ci, hw, hw)).astype(np.float32)
        conv = nn.Conv2d(ci, co, k, stride=stride, padding=pad, rng=rng)
        got = conv(x)
        # Naive direct convolution.
        oh = conv_output_size(hw, k, stride, pad)
        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        want = np.zeros((n, co, oh, oh))
        for b in range(n):
            for f in range(co):
                for i in range(oh):
                    for j in range(oh):
                        patch = xp[b, :, i * stride:i * stride + k, j * stride:j * stride + k]
                        want[b, f, i, j] = np.sum(patch * conv.weight.data[f]) + conv.bias.data[f]
        np.testing.assert_allclose(got, want, atol=1e-3)

    @given(
        st.integers(1, 2), st.integers(1, 3), st.sampled_from([2, 3]),
        st.integers(5, 8), st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_im2col_row_count(self, n, c, k, hw, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, c, hw, hw)).astype(np.float32)
        cols, (oh, ow) = im2col(x, k, k, 1, 0)
        assert cols.shape == (n * oh * ow, c * k * k)
        assert oh == hw - k + 1

    @given(st.integers(2, 6), st.integers(1, 3), st.integers(4, 8), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_maxpool_output_bounded_by_input(self, n, c, hw, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, c, hw, hw)).astype(np.float32)
        out = nn.MaxPool2d(2)(x)
        assert out.max() <= x.max() + 1e-6
        assert out.min() >= x.min() - 1e-6


class TestLossProperties:
    @given(st.integers(2, 10), st.integers(2, 8), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_cross_entropy_nonnegative(self, n, c, seed):
        rng = np.random.default_rng(seed)
        logits = rng.standard_normal((n, c)).astype(np.float32)
        labels = rng.integers(0, c, n)
        loss, grad = nn.CrossEntropyLoss()(logits, labels)
        assert loss >= 0
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-5)

    @given(st.integers(2, 8), st.integers(2, 8), st.integers(0, 10_000),
           st.floats(min_value=0.5, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_kl_nonnegative_any_temperature(self, n, c, seed, temp):
        rng = np.random.default_rng(seed)
        s = rng.standard_normal((n, c))
        t = rng.standard_normal((n, c))
        loss, _ = nn.KLDivLoss(temp)(s, t)
        assert loss >= -1e-8

    @given(st.integers(2, 8), st.integers(2, 16), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_contrastive_loss_bounded_below(self, n, d, seed):
        rng = np.random.default_rng(seed)
        z = rng.standard_normal((n, d))
        zg = rng.standard_normal((n, d))
        zp = rng.standard_normal((n, d))
        loss, _ = nn.ModelContrastiveLoss(0.5)(z, zg, zp)
        # -log sigmoid-type loss: bounded below by softplus of the max
        # similarity gap; certainly >= 0 minus slack is too strong, but
        # loss >= -log(1) - margin... practical bound: loss >= 0 when
        # sim(z,zg) <= sim(z,zp) + 0; in general loss > 0 always since
        # the softmax prob is < 1.
        assert loss > 0


class TestCompressionProperties:
    @given(
        st.lists(st.tuples(st.integers(1, 5), st.integers(1, 5)), min_size=1, max_size=3),
        st.integers(1, 12),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_quantization_error_bounded(self, shapes, bits, seed):
        rng = np.random.default_rng(seed)
        tree = [rng.standard_normal(s).astype(np.float32) for s in shapes]
        comp = QuantizationCompressor(bits=bits, seed=seed)
        payload, _ = comp.encode(tree)
        back = comp.decode(payload, tree)
        step = 2 * payload["scale"] / comp.levels
        for a, b in zip(tree, back):
            assert np.abs(a - b).max() <= step + 1e-5

    @given(
        st.integers(4, 40),
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_topk_keeps_exactly_k(self, size, fraction, seed):
        rng = np.random.default_rng(seed)
        tree = [rng.standard_normal(size).astype(np.float32)]
        comp = TopKCompressor(fraction=fraction)
        payload, _ = comp.encode(tree)
        back = comp.decode(payload, tree)[0]
        k = max(1, int(round(fraction * size)))
        assert (back != 0).sum() <= k  # ties/zeros may reduce the count
        # Every kept value appears unchanged in the input.
        kept = back[back != 0]
        for v in kept:
            assert v in tree[0]

    @given(st.integers(4, 30), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_topk_preserves_largest_magnitude(self, size, seed):
        rng = np.random.default_rng(seed)
        tree = [rng.standard_normal(size).astype(np.float32)]
        comp = TopKCompressor(fraction=0.25)
        payload, _ = comp.encode(tree)
        back = comp.decode(payload, tree)[0]
        assert back[np.abs(tree[0]).argmax()] == tree[0][np.abs(tree[0]).argmax()]


class TestModelInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_set_get_weights_is_identity(self, seed):
        from repro.models import build_mlp

        rng = np.random.default_rng(seed)
        m = build_mlp((1, 4, 4), 3, hidden=5, rng=rng)
        w = [rng.standard_normal(p.shape).astype(np.float32) for p in m.get_weights()]
        m.set_weights(w)
        for a, b in zip(m.get_weights(), w):
            np.testing.assert_array_equal(a, b)

    @given(st.integers(1, 6), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_forward_deterministic_in_eval(self, n, seed):
        from repro.models import build_cnn

        rng = np.random.default_rng(seed)
        m = build_cnn((1, 8, 8), 4, rng=rng)
        m.eval()
        x = rng.standard_normal((n, 1, 8, 8)).astype(np.float32)
        np.testing.assert_array_equal(m(x), m(x))
