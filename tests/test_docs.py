"""The documentation stays healthy: links resolve, the quickstart runs.

Thin wrapper over ``scripts/check_docs.py`` (which CI also runs as a
standalone docs job) so tier-1 catches a broken doc link or a rotten
README snippet locally, before CI does.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "scripts"))

import check_docs  # noqa: E402


def test_markdown_corpus_nonempty():
    names = {p.name for p in check_docs.md_files()}
    assert {"README.md", "api.md", "architecture.md", "algorithms.md"} <= names


def test_intra_repo_links_resolve():
    errors = check_docs.check_links(check_docs.md_files())
    assert not errors, "\n".join(errors)


def test_readme_quickstart_runs():
    errors = check_docs.check_quickstart(REPO / "README.md")
    assert not errors, "\n".join(errors)
