"""The virtual-clock async/semi-sync subsystem (``repro.fl.asyncfl``).

Covers: deterministic event ordering (ties by client id), device-profile
timing, byte-identical fixed-seed histories for both event-driven modes,
the semisync == sync equivalence at full buffer / no deadline (which also
pins FedTrip's measured-xi fallback), deadline/buffer semantics, sync
virtual-time stamping, spec/CLI/persistence plumbing, and the tier-1
``--mode`` rerun hook.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import ExperimentSpec, available_modes, build_mode, run_experiment
from repro.cli import main as cli_main
from repro.fl.asyncfl import AsyncFLEngine, ClientTimingModel, Event, EventQueue, VirtualClock
from repro.fl.history import History
from repro.fl.systems import NETWORK_PRESETS
from repro.fl.types import RoundRecord
from repro.io.persistence import load_history, save_history

TINY = dict(dataset="tiny", model="mlp", method="fedavg", n_clients=4,
            clients_per_round=2, rounds=3, batch_size=20, lr=0.05)


def tiny_spec(**overrides) -> ExperimentSpec:
    return ExperimentSpec(**{**TINY, **overrides})


def assert_identical_histories(a: History, b: History, context: str = "") -> None:
    """Byte-identical round records; wall_seconds and its per-phase
    breakdown (both host time) excluded."""
    assert len(a) == len(b), context
    for ra, rb in zip(a.records, b.records):
        da, db = ra.to_dict(), rb.to_dict()
        for key in ("wall_seconds", "phase_seconds"):
            da.pop(key), db.pop(key)
        assert da == db, f"{context}: round {ra.round_idx} diverged"


# ---------------------------------------------------------------------------
# clock + event queue
# ---------------------------------------------------------------------------

class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(Event(3.0, 1))
        q.push(Event(1.0, 2))
        q.push(Event(2.0, 0))
        assert [q.pop().client_id for _ in range(3)] == [2, 0, 1]

    def test_ties_break_by_client_id(self):
        q = EventQueue()
        for cid in (5, 1, 3, 2):
            q.push(Event(7.5, cid))
        assert [q.pop().client_id for _ in range(4)] == [1, 2, 3, 5]

    def test_same_client_same_time_is_fifo(self):
        q = EventQueue()
        q.push(Event(1.0, 0, payload="first"))
        q.push(Event(1.0, 0, payload="second"))
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_pop_until_respects_deadline(self):
        q = EventQueue()
        q.push(Event(1.0, 0))
        q.push(Event(5.0, 1))
        assert q.pop_until(2.0).client_id == 0
        assert q.pop_until(2.0) is None
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_clock_never_runs_backward(self):
        clock = VirtualClock()
        clock.advance_to(4.0)
        with pytest.raises(ValueError, match="backward"):
            clock.advance_to(3.0)
        assert clock.now == 4.0

    def test_negative_event_time_rejected(self):
        with pytest.raises(ValueError):
            Event(-1.0, 0)


class TestTimingModel:
    def test_iot_slower_than_wifi(self):
        wifi = ClientTimingModel.from_preset("wifi", n_clients=2)
        iot = ClientTimingModel.from_preset("iot", n_clients=2)
        assert iot.duration_s(0, 1e9, 1e6) > wifi.duration_s(0, 1e9, 1e6)

    def test_heterogeneity_spread_is_deterministic(self):
        a = ClientTimingModel.from_preset("iot", n_clients=8, heterogeneity=4.0, seed=3)
        b = ClientTimingModel.from_preset("iot", n_clients=8, heterogeneity=4.0, seed=3)
        # Compute-heavy probe: heterogeneity scales compute speed only.
        durs_a = [a.duration_s(k, 1e10, 1e6) for k in range(8)]
        durs_b = [b.duration_s(k, 1e10, 1e6) for k in range(8)]
        assert durs_a == durs_b
        assert max(durs_a) > 1.5 * min(durs_a)  # real stragglers exist

    def test_duration_strictly_positive(self):
        m = ClientTimingModel.from_preset("wifi", n_clients=1)
        assert m.duration_s(0, 0.0, 0.0) > 0.0


# ---------------------------------------------------------------------------
# semisync mode
# ---------------------------------------------------------------------------

class TestSemisync:
    def test_fixed_seed_is_byte_identical(self):
        spec = tiny_spec(mode="semisync", device_profile="iot", heterogeneity=4.0)
        assert_identical_histories(
            run_experiment(spec), run_experiment(spec), "semisync determinism"
        )

    @pytest.mark.parametrize("method", ["fedavg", "fedtrip"])
    def test_full_buffer_no_deadline_equals_sync(self, method):
        """Semisync degenerates to the barrier loop when it waits for the
        whole buffer — byte-identical records, which for fedtrip also pins
        measured-xi == round-arithmetic-xi in the synchronous case."""
        sync = run_experiment(tiny_spec(method=method, rounds=4))
        semi = run_experiment(
            tiny_spec(method=method, rounds=4, mode="semisync",
                      device_profile="iot", heterogeneity=4.0)
        )
        assert len(sync) == len(semi) == 4
        for rs, re_ in zip(sync.records, semi.records):
            assert rs.selected == re_.selected
            assert rs.mean_train_loss == re_.mean_train_loss
            assert rs.test_accuracy == re_.test_accuracy
            assert rs.cumulative_flops == re_.cumulative_flops
            assert rs.cumulative_comm_bytes == re_.cumulative_comm_bytes
            assert re_.update_staleness == [0] * len(re_.selected)

    def test_virtual_time_strictly_increases(self):
        hist = run_experiment(tiny_spec(mode="semisync", device_profile="iot"))
        times = hist.virtual_times()
        assert not np.isnan(times).any()
        assert (np.diff(times) > 0).all()

    def test_deadline_drops_stragglers_and_measures_staleness(self):
        """A tight deadline under heavy heterogeneity aggregates fewer
        than clients_per_round updates in some round, and the straggler's
        update lands later with measured staleness > 0."""
        # Calibrate the deadline to the fast clients: all 4 clients selected
        # each round, slowest up to 8x the fastest under heterogeneity=8.
        probe = run_experiment(
            tiny_spec(n_clients=4, clients_per_round=4, rounds=1,
                      mode="semisync", device_profile="iot", heterogeneity=8.0)
        )
        full_round_s = probe.records[0].virtual_time_s
        hist = run_experiment(
            tiny_spec(n_clients=4, clients_per_round=4, rounds=6,
                      mode="semisync", device_profile="iot", heterogeneity=8.0,
                      deadline_s=full_round_s / 2.0)
        )
        sizes = [len(r.selected) for r in hist.records]
        assert min(sizes) < 4, f"deadline never cut a round: {sizes}"
        staleness = hist.staleness_values()
        assert staleness.max() > 0, "no straggler ever landed late"
        assert hist.mean_staleness() >= 0.0

    def test_zero_arrival_deadline_extends_to_first_arrival(self):
        """A deadline far shorter than any client's duration still yields
        one update per round (the server waits for the first report)."""
        hist = run_experiment(
            tiny_spec(mode="semisync", device_profile="iot", deadline_s=1e-6)
        )
        assert all(len(r.selected) >= 1 for r in hist.records)
        assert len(hist) == TINY["rounds"]

    def test_short_selection_keeps_clock_finite(self):
        """Heavy dropout can offer fewer clients than the buffer wants; with
        no deadline the round must aggregate what arrived and keep the
        virtual clock at the last arrival (regression: it advanced to inf)."""
        hist = run_experiment(
            tiny_spec(n_clients=4, clients_per_round=3, rounds=5,
                      sampler="dropout", sampler_kwargs={"dropout": 0.9},
                      mode="semisync", device_profile="iot")
        )
        times = hist.virtual_times()
        assert np.isfinite(times).all()
        assert (np.diff(times) >= 0).all()
        assert all(1 <= len(r.selected) <= 3 for r in hist.records)

    def test_over_selection_via_buffer_size(self):
        """clients_per_round=4 dispatched, buffer K=2 aggregated: rounds
        close on the 2 fastest arrivals (FedBuff over-selection)."""
        hist = run_experiment(
            tiny_spec(n_clients=4, clients_per_round=4, buffer_size=2,
                      mode="semisync", device_profile="iot", heterogeneity=4.0)
        )
        assert all(len(r.selected) <= 2 for r in hist.records)
        assert len(hist) == TINY["rounds"]


# ---------------------------------------------------------------------------
# async mode
# ---------------------------------------------------------------------------

class TestAsync:
    def test_fixed_seed_is_byte_identical(self):
        spec = tiny_spec(mode="async", device_profile="iot", heterogeneity=4.0,
                         rounds=5)
        assert_identical_histories(
            run_experiment(spec), run_experiment(spec), "async determinism"
        )

    def test_one_update_per_version_with_measured_staleness(self):
        hist = run_experiment(
            tiny_spec(mode="async", device_profile="iot", heterogeneity=4.0,
                      rounds=6)
        )
        assert len(hist) == 6
        for r in hist.records:
            assert len(r.selected) == 1          # buffer_size defaults to 1
            assert len(r.update_staleness) == 1
            assert r.update_staleness[0] >= 0
        # Concurrent training means *some* update arrives stale.
        assert hist.staleness_values().max() > 0
        times = hist.virtual_times()
        assert (np.diff(times) >= 0).all()

    def test_early_stopping_works(self):
        hist = run_experiment(
            tiny_spec(mode="async", device_profile="wifi", rounds=50,
                      target_accuracy=10.0)
        )
        assert hist.stop_reason is not None
        assert len(hist) < 50

    def test_async_rejects_deadline(self):
        with pytest.raises(ValueError, match="semisync"):
            run_experiment(tiny_spec(mode="async", deadline_s=5.0))

    def test_buffer_size_cannot_exceed_concurrency(self):
        with pytest.raises(ValueError, match="buffer_size"):
            run_experiment(tiny_spec(mode="async", buffer_size=3))

    def test_preamble_strategies_are_rejected(self):
        with pytest.raises(ValueError, match="preamble"):
            run_experiment(tiny_spec(method="feddane", mode="async"))

    @pytest.mark.parametrize("method", ["scaffold", "slowmo", "feddyn"])
    def test_server_side_strategies_are_rejected(self, method):
        """Async mixing replaces server aggregation; strategies whose server
        state lives in aggregate/post_aggregate must not run silently."""
        with pytest.raises(ValueError, match="server-side aggregation"):
            run_experiment(tiny_spec(method=method, mode="async"))
        # ... but semisync runs their real aggregation and accepts them.
        hist = run_experiment(
            tiny_spec(method=method, mode="semisync", device_profile="wifi", rounds=2)
        )
        assert len(hist) == 2

    def test_non_uniform_samplers_are_rejected(self):
        """Async refill is a uniform draw over idle clients; accepting a
        dropout/diurnal sampler and ignoring it would fake a churn study."""
        with pytest.raises(ValueError, match="uniform"):
            run_experiment(tiny_spec(mode="async", sampler="dropout",
                                     sampler_kwargs={"dropout": 0.5}))


# ---------------------------------------------------------------------------
# sync mode + device profile (virtual time on the barrier loop)
# ---------------------------------------------------------------------------

class TestSyncVirtualTime:
    def test_profile_stamps_cumulative_virtual_time(self):
        hist = run_experiment(tiny_spec(device_profile="iot"))
        times = hist.virtual_times()
        assert not np.isnan(times).any()
        assert (np.diff(times) > 0).all()
        # Synchronous rounds have zero staleness by construction.
        assert all(r.update_staleness == [0] * len(r.selected) for r in hist.records)

    def test_mismatched_system_model_raises_before_pool_spawn(self):
        """A bad system model must raise from __init__ *before* the executor
        is built (a later raise would leak a spawned process pool)."""
        from repro.api.engine import Engine
        from repro.fl.systems import SystemModel

        spec = tiny_spec()
        with pytest.raises(ValueError, match="system model covers"):
            Engine(spec.build_data(), spec.build_strategy(), spec.build_config(),
                   model_name=spec.model,
                   system_model=SystemModel("wifi", n_clients=TINY["n_clients"] + 1))

    def test_no_profile_means_no_virtual_clock(self):
        hist = run_experiment(tiny_spec())
        assert np.isnan(hist.virtual_times()).all()
        assert all(r.update_staleness is None for r in hist.records)
        assert hist.time_to_accuracy(0.0) is None

    def test_time_to_accuracy_reads_virtual_clock(self):
        hist = run_experiment(tiny_spec(device_profile="iot"))
        t = hist.time_to_accuracy(0.0)  # any evaluated accuracy hits 0
        assert t is not None
        assert 0 < t <= hist.records[-1].virtual_time_s

    def test_profile_does_not_change_trained_numbers(self):
        plain = run_experiment(tiny_spec())
        priced = run_experiment(tiny_spec(device_profile="iot", heterogeneity=4.0))
        for ra, rb in zip(plain.records, priced.records):
            assert ra.selected == rb.selected
            assert ra.mean_train_loss == rb.mean_train_loss
            assert ra.test_accuracy == rb.test_accuracy

    def test_iot_slower_than_wifi_end_to_end(self):
        wifi = run_experiment(tiny_spec(device_profile="wifi"))
        iot = run_experiment(tiny_spec(device_profile="iot"))
        assert iot.records[-1].virtual_time_s > wifi.records[-1].virtual_time_s


# ---------------------------------------------------------------------------
# FedTrip measured xi
# ---------------------------------------------------------------------------

class TestFedTripMeasuredXi:
    def test_measured_staleness_preferred_over_round_arithmetic(self):
        from repro.algorithms.fedtrip import FedTrip

        strat = FedTrip(mu=0.4)

        class Ctx:
            round_idx = 10
            state = {"historical": ["x"], "last_round": 7}
            xi_measured = None

        assert strat._xi(Ctx()) == 3.0  # round arithmetic fallback
        Ctx.xi_measured = 5.0
        assert strat._xi(Ctx()) == 5.0  # scheduler measurement wins
        Ctx.xi_measured = 0.0
        assert strat._xi(Ctx()) == 1.0  # floored like the paper's xi

    def test_async_fedtrip_trains_and_differs_from_sync(self):
        """Under real staleness the measured xi changes the trajectory."""
        sync = run_experiment(tiny_spec(method="fedtrip", rounds=6))
        asyn = run_experiment(
            tiny_spec(method="fedtrip", rounds=6, mode="async",
                      device_profile="iot", heterogeneity=4.0)
        )
        assert len(asyn) == 6
        assert np.isfinite(asyn.train_losses()).all()
        assert asyn.records[-1].mean_train_loss != sync.records[-1].mean_train_loss


# ---------------------------------------------------------------------------
# spec / registry / CLI / persistence plumbing
# ---------------------------------------------------------------------------

class TestPlumbing:
    def test_builtin_modes_registered(self):
        assert {"sync", "semisync", "async"} <= set(available_modes())

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown mode"):
            run_experiment(tiny_spec(mode="lockstep"))

    def test_build_mode_returns_event_engine(self):
        spec = tiny_spec(mode="semisync")
        engine = build_mode("semisync", spec=spec, data=spec.build_data(), callbacks=())
        try:
            assert isinstance(engine, AsyncFLEngine)
            assert engine.buffer_size == spec.clients_per_round
        finally:
            engine.close()

    def test_spec_round_trips_mode_fields(self):
        spec = tiny_spec(mode="semisync", deadline_s=12.5, buffer_size=2,
                         device_profile="iot", heterogeneity=3.0)
        back = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec
        assert back.cell_key() == spec.cell_key()

    def test_cell_key_discriminates_mode_and_profile(self):
        base = tiny_spec()
        assert base.cell_key() != tiny_spec(mode="async").cell_key()
        assert base.cell_key() != tiny_spec(device_profile="iot").cell_key()
        assert (tiny_spec(mode="semisync", deadline_s=5.0).cell_key()
                != tiny_spec(mode="semisync", deadline_s=9.0).cell_key())

    def test_sync_mode_rejects_inapplicable_knobs(self):
        """A knob that would silently do nothing is an error (same policy
        as from_dict's unknown-key rejection)."""
        with pytest.raises(ValueError, match="event-driven"):
            tiny_spec(mode="sync", deadline_s=5.0)
        with pytest.raises(ValueError, match="event-driven"):
            tiny_spec(mode="sync", buffer_size=2)
        with pytest.raises(ValueError, match="heterogeneity"):
            tiny_spec(mode="sync", heterogeneity=4.0)  # no device_profile
        # ... but heterogeneity with a profile is the sync straggler knob.
        assert tiny_spec(device_profile="iot", heterogeneity=4.0).heterogeneity == 4.0

    def test_build_system_model_default(self):
        assert tiny_spec().build_system_model() is None
        model = tiny_spec().build_system_model(default="wifi")
        assert model is not None and len(model.profiles) == TINY["n_clients"]
        iot = tiny_spec(device_profile="iot").build_system_model(default="wifi")
        assert iot.profiles[0].bandwidth_bps == NETWORK_PRESETS["iot"].bandwidth_bps

    def test_history_persistence_round_trips_virtual_fields(self, tmp_path):
        hist = History()
        hist.append(RoundRecord(0, [0, 1], 50.0, 1.0, 2.0, 1e9, 1e6, 0.1,
                                virtual_time_s=12.5, update_staleness=[0, 2]))
        hist.append(RoundRecord(1, [2], None, None, 1.9, 2e9, 2e6, 0.1))
        path = str(tmp_path / "hist.json")
        save_history(hist, path)
        back = load_history(path)
        assert back.records[0].virtual_time_s == 12.5
        assert back.records[0].update_staleness == [0, 2]
        assert back.records[1].virtual_time_s is None
        assert back.to_dict() == hist.to_dict()

    def test_cli_train_semisync_smoke(self, capsys):
        rc = cli_main([
            "train", "--dataset", "tiny", "--model", "mlp", "--method", "fedtrip",
            "--clients", "4", "--clients-per-round", "2", "--rounds", "2",
            "--batch-size", "20", "--mode", "semisync", "--device-profile", "iot",
            "--heterogeneity", "4.0", "--buffer-size", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated time" in out and "mode=semisync" in out

    def test_cli_train_async_smoke(self, capsys):
        rc = cli_main([
            "train", "--dataset", "tiny", "--model", "mlp", "--method", "fedavg",
            "--clients", "4", "--clients-per-round", "2", "--rounds", "2",
            "--batch-size", "20", "--mode", "async",
        ])
        assert rc == 0
        assert "mode=async" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# tier-1 rerun hook: CI runs the suite once more with
# ``--mode semisync --device-profile iot``
# ---------------------------------------------------------------------------

class TestModeRerun:
    def test_selected_mode_trains_deterministically(self, mode_name, device_profile_name):
        spec = tiny_spec(mode=mode_name, device_profile=device_profile_name)
        assert_identical_histories(
            run_experiment(spec), run_experiment(spec),
            f"mode={mode_name} profile={device_profile_name}",
        )

    def test_selected_mode_reaches_sane_accuracy(self, mode_name, device_profile_name):
        spec = tiny_spec(mode=mode_name, device_profile=device_profile_name,
                         rounds=6)
        hist = run_experiment(spec)
        assert len(hist) == 6
        assert np.isfinite(hist.best_accuracy())
