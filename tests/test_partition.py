"""Non-IID partitioners: the mechanics behind Fig. 4."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    build_federated_data,
    dirichlet_partition,
    heterogeneity_summary,
    iid_partition,
    make_partition,
    orthogonal_partition,
    partition_label_counts,
)


@pytest.fixture
def labels(rng):
    return rng.integers(0, 10, size=2000)


def _check_disjoint_exact(shards, per_client):
    all_idx = np.concatenate(shards)
    assert len(all_idx) == len(set(all_idx.tolist())), "shards overlap"
    assert all(len(s) == per_client for s in shards), "quota violated"


class TestIID:
    def test_disjoint_and_sized(self, labels, rng):
        shards = iid_partition(labels, 8, 100, rng)
        _check_disjoint_exact(shards, 100)

    def test_roughly_balanced_classes(self, labels, rng):
        shards = iid_partition(labels, 5, 300, rng)
        counts = partition_label_counts(labels, shards, 10)
        # IID: each client ~30 per class.
        assert (counts > 10).all()

    def test_insufficient_data_rejected(self, labels, rng):
        with pytest.raises(ValueError):
            iid_partition(labels, 100, 100, rng)


class TestDirichlet:
    def test_disjoint_and_sized(self, labels, rng):
        shards = dirichlet_partition(labels, 8, 100, rng, alpha=0.5)
        _check_disjoint_exact(shards, 100)

    def test_alpha_controls_skew(self, labels, rng):
        """Fig. 4: Dir-0.1 clients hold 1-2 dominant classes, Dir-0.5 hold 3-4."""
        s_low = dirichlet_partition(labels, 10, 150, np.random.default_rng(0), alpha=0.1)
        s_high = dirichlet_partition(labels, 10, 150, np.random.default_rng(0), alpha=10.0)
        h_low = heterogeneity_summary(partition_label_counts(labels, s_low, 10))
        h_high = heterogeneity_summary(partition_label_counts(labels, s_high, 10))
        assert h_low["mean_normalized_entropy"] < h_high["mean_normalized_entropy"]

    def test_deterministic(self, labels):
        a = dirichlet_partition(labels, 5, 100, np.random.default_rng(3), alpha=0.5)
        b = dirichlet_partition(labels, 5, 100, np.random.default_rng(3), alpha=0.5)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_invalid_alpha(self, labels, rng):
        with pytest.raises(ValueError):
            dirichlet_partition(labels, 5, 100, rng, alpha=0.0)

    def test_exhausting_pools_still_fills_quota(self, rng):
        """Tight partition (all data assigned) must still satisfy quotas."""
        labels = np.repeat(np.arange(4), 50)  # 200 samples
        shards = dirichlet_partition(labels, 4, 50, rng, alpha=0.1)
        _check_disjoint_exact(shards, 50)

    def test_labels_correct(self, labels, rng):
        shards = dirichlet_partition(labels, 4, 100, rng, alpha=0.5)
        counts = partition_label_counts(labels, shards, 10)
        assert counts.sum() == 400


class TestOrthogonal:
    def test_clusters_have_disjoint_classes(self, labels, rng):
        shards = orthogonal_partition(labels, 10, 100, rng, n_clusters=5)
        counts = partition_label_counts(labels, shards, 10)
        # Clients in different clusters share no classes.
        class_sets = [frozenset(np.flatnonzero(counts[k]).tolist()) for k in range(10)]
        for i in range(10):
            for j in range(10):
                if i % 5 != j % 5:
                    assert not (class_sets[i] & class_sets[j])

    def test_orthogonal5_gives_two_classes(self, labels, rng):
        """Fig. 4: Orthogonal-5 on 10 classes -> 2 classes per client."""
        shards = orthogonal_partition(labels, 10, 100, rng, n_clusters=5)
        counts = partition_label_counts(labels, shards, 10)
        assert ((counts > 0).sum(axis=1) == 2).all()

    def test_orthogonal10_gives_one_class(self, labels, rng):
        shards = orthogonal_partition(labels, 10, 100, rng, n_clusters=10)
        counts = partition_label_counts(labels, shards, 10)
        assert ((counts > 0).sum(axis=1) == 1).all()

    def test_disjoint_and_sized(self, labels, rng):
        shards = orthogonal_partition(labels, 10, 100, rng, n_clusters=5)
        _check_disjoint_exact(shards, 100)

    def test_invalid_cluster_count(self, labels, rng):
        with pytest.raises(ValueError):
            orthogonal_partition(labels, 10, 50, rng, n_clusters=11)

    def test_pool_exhaustion_raises(self, rng):
        labels = np.repeat(np.arange(10), 10)  # only 10 per class
        with pytest.raises(ValueError):
            orthogonal_partition(labels, 10, 60, rng, n_clusters=10)


class TestDispatch:
    def test_make_partition_kinds(self, labels, rng):
        for kind, kwargs in [("iid", {}), ("dirichlet", {"alpha": 0.5}), ("orthogonal", {"n_clusters": 5})]:
            shards = make_partition(kind, labels, 5, 100, rng, **kwargs)
            assert len(shards) == 5

    def test_unknown_kind(self, labels, rng):
        with pytest.raises(KeyError):
            make_partition("zipf", labels, 5, 100, rng)


class TestFederatedData:
    def test_build_and_shard_access(self):
        fed = build_federated_data("tiny", n_clients=5, partition="dirichlet", alpha=0.5, seed=0)
        assert fed.n_clients == 5
        ds = fed.client_dataset(0)
        assert len(ds) == len(fed.client_shards[0])

    def test_label_counts_shape(self):
        fed = build_federated_data("tiny", n_clients=5, partition="iid", seed=0)
        counts = fed.label_counts()
        assert counts.shape == (5, fed.spec.num_classes)

    def test_caps_samples_per_client(self):
        # tiny has 400 train samples; 8 clients => at most 50 each.
        fed = build_federated_data("tiny", n_clients=8, partition="iid", seed=0,
                                   samples_per_client=1000)
        assert all(len(s) == 50 for s in fed.client_shards)

    def test_too_many_clients_rejected(self):
        with pytest.raises(ValueError):
            build_federated_data("tiny", n_clients=500, partition="iid", seed=0)
