"""FedBN: local batch normalization under feature skew."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FLConfig, Simulation, build_federated_data, build_strategy
from repro.algorithms import FedAvg, FedBN
from repro.models import build_cnn


@pytest.fixture(scope="module")
def bn_model_fn():
    def fn():
        return build_cnn((1, 8, 8), 4, rng=np.random.default_rng(7), batch_norm=True)

    return fn


@pytest.fixture(scope="module")
def skew_data():
    return build_federated_data("tiny", n_clients=4, partition="iid", seed=0,
                                feature_skew=True)


class TestBatchNormCNN:
    def test_builder_inserts_bn(self, bn_model_fn):
        model = bn_model_fn()
        kinds = [type(m).__name__ for _, m in model.modules()]
        assert kinds.count("BatchNorm2d") == 3
        assert kinds.count("BatchNorm1d") == 1
        assert model.name == "cnn_bn"

    def test_bn_cnn_forward_backward(self, bn_model_fn, rng):
        model = bn_model_fn()
        x = rng.standard_normal((6, 1, 8, 8)).astype(np.float32)
        out = model(x)
        assert out.shape == (6, 4)
        model.zero_grad()
        model.backward(np.ones_like(out))
        assert all(np.isfinite(p.grad).all() for p in model.parameters())

    def test_plain_cnn_has_no_bn(self):
        model = build_cnn((1, 8, 8), 4, rng=np.random.default_rng(0))
        kinds = [type(m).__name__ for _, m in model.modules()]
        assert "BatchNorm2d" not in kinds


class TestFedBN:
    def _config(self, rounds=3):
        return FLConfig(rounds=rounds, n_clients=4, clients_per_round=2,
                        batch_size=20, lr=0.05, seed=0)

    def test_reduces_to_fedavg_without_bn_layers(self, tiny_data):
        cfg = FLConfig(rounds=3, n_clients=6, clients_per_round=3,
                       batch_size=20, lr=0.05, seed=0)
        hists = {}
        for strat in (FedAvg(), FedBN()):
            sim = Simulation(tiny_data, strat, cfg, model_name="mlp")
            hists[strat.name] = sim.run().accuracies()
            sim.close()
        np.testing.assert_allclose(hists["fedbn"], hists["fedavg"], atol=1e-5)

    def test_clients_keep_distinct_bn_params(self, skew_data, bn_model_fn):
        sim = Simulation(skew_data, FedBN(), self._config(4), model_fn=bn_model_fn)
        sim.run()
        participated = sorted({c for r in sim.history.records for c in r.selected})
        blobs = [sim.clients[c].state["bn"] for c in participated
                 if sim.clients[c].state.get("bn")]
        assert len(blobs) >= 2
        # Different feature skews -> different local BN statistics.
        a, b = blobs[0][0], blobs[1][0]
        assert not np.allclose(a["running_mean"], b["running_mean"])
        sim.close()

    def test_trains_under_feature_skew(self, skew_data, bn_model_fn):
        sim = Simulation(skew_data, FedBN(), self._config(5), model_fn=bn_model_fn)
        hist = sim.run()
        assert hist.best_accuracy() > 30.0  # 4 classes, chance 25%
        sim.close()

    def test_personalize_loads_client_bn(self, skew_data, bn_model_fn):
        strat = FedBN()
        sim = Simulation(skew_data, strat, self._config(3), model_fn=bn_model_fn)
        sim.run()
        cid = next(c for c in range(4) if sim.clients[c].state.get("bn"))
        model = sim.global_model()
        before = model.state_dict()
        strat.personalize(model, sim.clients[cid].state)
        after = model.state_dict()
        changed = any(not np.array_equal(before[k], after[k])
                      for k in before if "gamma" in k or "beta" in k)
        assert changed
        sim.close()

    def test_registered(self):
        assert build_strategy("fedbn").name == "fedbn"
