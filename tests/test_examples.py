"""Smoke tests: every example script runs end-to-end (with tiny budgets)."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def _run(script: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_compare_algorithms(self):
        out = _run("compare_algorithms.py", "--rounds", "3", "--model", "mlp")
        assert "rounds to" in out
        assert "fedtrip" in out

    def test_heterogeneity_study(self):
        out = _run("heterogeneity_study.py", "--rounds", "3")
        assert "Orthogonal-10" in out
        assert "final accuracy under each heterogeneity type" in out

    def test_mu_sensitivity(self):
        out = _run("mu_sensitivity.py", "--rounds", "3", "--mus", "0.4", "1.5")
        assert "best acc" in out

    def test_scalability_study(self):
        out = _run("scalability_study.py", "--rounds", "3")
        assert "4-of-50" in out
        assert "E[xi]" in out

    def test_resource_study(self):
        out = _run("resource_study.py", "--rounds", "3")
        assert "simulated time" in out
        assert "int8 quantized" in out

    def test_hyperparameter_sweep(self, tmp_path):
        out = _run("hyperparameter_sweep.py", "--rounds", "2",
                   "--store", str(tmp_path / "runs"))
        assert "best acc" in out
        assert "rounds to 80%" in out

    def test_centralized_gap(self):
        out = _run("centralized_gap.py", "--rounds", "3")
        assert "centralized ceiling" in out
        assert "fedtrip final" in out

    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "best accuracy" in out
        assert "total communication" in out
