"""Unit tests for the benchmark harness utilities (benchmarks/harness.py)."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
sys.path.insert(0, BENCH_DIR)

import harness  # noqa: E402
import make_report  # noqa: E402


class TestFormatting:
    def test_fmt_rounds(self):
        assert harness.fmt_rounds(7, 30) == "7"
        assert harness.fmt_rounds(None, 30) == ">30"

    def test_relative(self):
        assert harness.relative(20, 10) == "2.00x"
        assert harness.relative(None, 10) == "-"
        assert harness.relative(10, None) == "-"

    def test_print_table_alignment(self, capsys):
        harness.print_table("t", ["a", "bb"], [["1", "2"], ["333", "4"]])
        out = capsys.readouterr().out
        assert "=== t ===" in out
        rows = [ln for ln in out.splitlines() if ln and not ln.startswith("===")]
        # Second column starts at the same offset on every row.
        offsets = {ln.index(c) for ln, c in zip(rows, ["bb", "2", "4"])}
        assert len(offsets) == 1

    def test_md_table(self):
        out = make_report.md_table(["x", "y"], [["1", "2"]])
        assert out.splitlines()[0] == "| x | y |"
        assert out.splitlines()[1] == "|---|---|"
        assert out.splitlines()[2] == "| 1 | 2 |"


class TestRunCaseCache:
    def test_memoizes_identical_calls(self):
        h1 = harness.run_case(
            "tiny", "mlp", "fedavg", partition="iid", alpha=None,
            rounds=2, n_clients=4, clients_per_round=2, batch_size=20, lr=0.05,
        )
        before = len(harness._RUN_CACHE)
        h2 = harness.run_case(
            "tiny", "mlp", "fedavg", partition="iid", alpha=None,
            rounds=2, n_clients=4, clients_per_round=2, batch_size=20, lr=0.05,
        )
        assert h2 is h1  # same object -> cache hit
        assert len(harness._RUN_CACHE) == before

    def test_overrides_key_cache(self):
        kwargs = dict(partition="iid", alpha=None, rounds=2, n_clients=4,
                      clients_per_round=2, batch_size=20, lr=0.05)
        a = harness.run_case("tiny", "mlp", "fedtrip", strategy_overrides={"mu": 0.1}, **kwargs)
        b = harness.run_case("tiny", "mlp", "fedtrip", strategy_overrides={"mu": 0.2}, **kwargs)
        assert a is not b

    def test_none_and_empty_overrides_share_key(self):
        kwargs = dict(partition="iid", alpha=None, rounds=2, n_clients=4,
                      clients_per_round=2, batch_size=20, lr=0.05)
        a = harness.run_case("tiny", "mlp", "fedprox", strategy_overrides=None, **kwargs)
        b = harness.run_case("tiny", "mlp", "fedprox", strategy_overrides={}, **kwargs)
        assert a is b

    def test_data_cache_shared(self):
        d1 = harness.get_data("tiny", 4, "iid")
        d2 = harness.get_data("tiny", 4, "iid")
        assert d1 is d2


class TestMakeReportSections:
    def test_sections_run_on_existing_outputs(self):
        """If the bench suite has produced out/*.json, every section must
        render without error; missing files must yield empty strings."""
        for section in make_report.SECTIONS:
            text = section()
            assert isinstance(text, str)

    def test_load_missing_returns_none(self):
        assert make_report.load("definitely_not_a_real_output") is None
