"""The observability layer: tracer/metric units, the JSONL exporter's
golden format, process-pool shard-merge determinism, and the contract that
tracing never perturbs a run (byte-identical History with tracing on vs
off across every executor × mode)."""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.api import ExperimentSpec, run_experiment
from repro.fl.types import RoundRecord
from repro.obs import (
    NULL_RECORDER,
    Counter,
    Gauge,
    Histogram,
    JsonlExporter,
    ListExporter,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    WorkerShardRecorder,
    label_suffix,
    payload_nbytes,
)
from repro.obs.trace import _encode_line

TINY = dict(dataset="tiny", model="mlp", method="fedavg", n_clients=4,
            clients_per_round=2, rounds=2, batch_size=20, lr=0.05)


def tiny_spec(**overrides) -> ExperimentSpec:
    return ExperimentSpec(**{**TINY, **overrides})


def _round_record(idx, **overrides):
    kwargs = dict(round_idx=idx, selected=[0, 1], test_accuracy=None,
                  test_loss=None, mean_train_loss=0.5, cumulative_flops=1e6,
                  cumulative_comm_bytes=2048.0, wall_seconds=0.01)
    kwargs.update(overrides)
    return RoundRecord(**kwargs)


# ---------------------------------------------------------------------------
# metric units
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates_and_rejects_decrease(self):
        c = Counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_is_last_write(self):
        g = Gauge("g")
        g.set(4)
        g.set(2)
        assert g.value == 2.0

    def test_histogram_buckets_count_sum_min_max(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.buckets == [1, 1, 1]  # <=1, <=10, overflow
        assert h.count == 3 and h.sum == 55.5
        assert h.min == 0.5 and h.max == 50.0
        assert h.mean() == pytest.approx(18.5)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_registry_get_or_create_and_kind_clash(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_label_suffix_rides_in_the_name(self):
        assert label_suffix({}) == ""
        name = reg_name = "fl_phase_seconds_total" + label_suffix({"phase": "sample"})
        assert name == 'fl_phase_seconds_total{phase="sample"}'
        reg = MetricsRegistry()
        reg.counter("fl_phase_seconds_total", labels={"phase": "sample"}).inc(2)
        assert reg.get(reg_name).value == 2.0

    def test_drain_resets_and_bumps_generation(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        gen = reg.generation
        snap = reg.drain()
        assert snap["a"]["value"] == 3.0
        assert reg.names() == []
        assert reg.generation == gen + 1

    def test_merge_sums_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(1)
        b.counter("n").inc(2)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        a.merge(b.to_dict())
        assert a.get("n").value == 3.0
        h = a.get("h")
        assert h.count == 2 and h.buckets == [1, 1]
        assert h.min == 0.5 and h.max == 2.0

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.to_dict())

    def test_prometheus_text_exposition(self):
        reg = MetricsRegistry()
        reg.counter("fl_rounds_total", "rounds completed").inc(3)
        reg.histogram("fl_round_seconds", buckets=(1.0, 10.0)).observe(0.5)
        text = reg.prometheus_text()
        assert "# HELP fl_rounds_total rounds completed" in text
        assert "# TYPE fl_rounds_total counter" in text
        assert "fl_rounds_total 3" in text
        assert 'fl_round_seconds_bucket{le="1"} 1' in text
        assert 'fl_round_seconds_bucket{le="+Inf"} 1' in text
        assert "fl_round_seconds_count 1" in text

    def test_summary_table_lists_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("h").observe(0.2)
        table = reg.summary_table()
        assert "a" in table and "h" in table and "count=1" in table


# ---------------------------------------------------------------------------
# tracer units + exporter golden format
# ---------------------------------------------------------------------------
class TestTracer:
    def test_null_recorder_is_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.begin_round(0)
        NULL_RECORDER.end_phase(dur_s=0.1, anything=1)
        NULL_RECORDER.end_round(None)
        NULL_RECORDER.close()
        assert isinstance(NULL_RECORDER, NullRecorder)

    def test_span_tree_round_phase_client(self):
        exp = ListExporter()
        rec = Recorder(exporter=exp)
        rec.begin_round(0)
        rec.begin_phase("local_train")
        rec.client_task(client_id=3, round_idx=0, dur_s=0.01, n_samples=20,
                        flops=1e6, bytes_up=512)
        rec.end_phase(dur_s=0.02, n_updates=1)
        rec.end_round(_round_record(0, virtual_time_s=4.5, test_accuracy=50.0))
        rec.close()
        by_kind = {s["kind"]: s for s in exp.records}
        assert set(by_kind) == {"round", "phase", "client_task"}
        assert by_kind["client_task"]["parent"] == by_kind["phase"]["span"]
        assert by_kind["phase"]["parent"] == by_kind["round"]["span"]
        assert by_kind["round"]["parent"] is None
        assert by_kind["round"]["virtual_s"] == 4.5
        assert by_kind["round"]["acc"] == 50.0
        assert by_kind["client_task"]["bytes_up"] == 512

    def test_end_round_updates_the_catalog(self):
        rec = Recorder()
        rec.begin_round(0)
        rec.broadcast_bytes(1000, 24, 2)
        rec.end_round(_round_record(
            0, test_accuracy=10.0, update_staleness=[0, 3],
            dropped_clients=[7], phase_seconds={"aggregate": 0.5}))
        m = rec.metrics
        assert m.get("fl_rounds_total").value == 1.0
        assert m.get("fl_evaluations_total").value == 1.0
        assert m.get("fl_updates_aggregated_total").value == 2.0
        assert m.get("fl_bytes_broadcast_total").value == 2048.0
        assert m.get("fl_clients_dropped_total").value == 1.0
        assert m.get("fl_update_staleness").count == 2
        assert m.get('fl_phase_seconds_total{phase="aggregate"}').value == 0.5
        assert m.get("fl_cohort_size").count == 1

    def test_instrument_cache_survives_drain(self):
        # profile_round drains mid-run; the recorder must re-resolve its
        # cached handles instead of writing to detached instruments.
        rec = Recorder()
        rec.begin_round(0)
        rec.end_round(_round_record(0))
        rec.metrics.drain()
        rec.begin_round(1)
        rec.end_round(_round_record(1))
        assert rec.metrics.get("fl_rounds_total").value == 1.0

    def test_close_is_idempotent_and_writes_metrics_file(self, tmp_path):
        path = tmp_path / "m.prom"
        rec = Recorder(metrics_path=str(path))
        rec.begin_round(0)
        rec.end_round(_round_record(0))
        rec.close()
        rec.close()
        text = path.read_text()
        assert "fl_rounds_total 1" in text
        assert "# ---- end-of-run summary ----" in text
        assert rec.metrics.get("fl_rounds_per_sec").value > 0

    def test_payload_nbytes_counts_arrays_and_lists(self):
        np = pytest.importorskip("numpy")
        payload = {"a": np.zeros(4, dtype=np.float32),
                   "b": [np.zeros(2, dtype=np.float64)], "c": "ignored"}
        assert payload_nbytes(payload) == 16 + 16

    def test_jsonl_exporter_golden_file(self, tmp_path):
        """The on-disk format is pinned: compact separators, one object
        per line, key order = emission order, parsable by json.loads."""
        path = tmp_path / "trace.jsonl"
        exp = JsonlExporter(str(path))
        exp.export({"span": 1, "parent": None, "kind": "round",
                    "name": "round", "round": 0, "t_start": 0.25,
                    "dur_s": 0.125, "cohort": 2, "virtual_s": None,
                    "acc": 61.5})
        exp.write_lines([_encode_line(
            {"span": 2, "parent": 1, "kind": "phase", "name": "sample",
             "round": 0, "t_start": 0.25, "dur_s": 0.0625})])
        exp.close()
        golden = (
            '{"span":1,"parent":null,"kind":"round","name":"round",'
            '"round":0,"t_start":0.25,"dur_s":0.125,"cohort":2,'
            '"virtual_s":null,"acc":61.5}\n'
            '{"span":2,"parent":1,"kind":"phase","name":"sample",'
            '"round":0,"t_start":0.25,"dur_s":0.0625}\n'
        )
        assert path.read_text() == golden
        assert [json.loads(line) for line in path.read_text().splitlines()]

    def test_encode_line_matches_json_dumps(self):
        cases = [
            {"a": 1, "b": 0.5, "c": "x", "d": None, "e": True, "f": False},
            {"weird": 'quote"here', "path": "a\\b"},  # escape fallback
            {"inf": math.inf},                        # non-finite fallback
            {"nested": {"x": 1}},                     # container fallback
            {"neg": -1.5e-7, "big": 10**18},
        ]
        for case in cases:
            assert json.loads(_encode_line(case)) == json.loads(
                json.dumps(case)), case

    def test_spans_flush_in_batches_and_on_close(self, tmp_path):
        path = tmp_path / "t.jsonl"
        rec = Recorder(exporter=JsonlExporter(str(path)))
        for i in range(10):
            rec.begin_round(i)
            rec.end_round(_round_record(i))
        rec.close()
        spans = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(spans) == 10
        assert [s["round"] for s in spans] == list(range(10))


# ---------------------------------------------------------------------------
# worker shards
# ---------------------------------------------------------------------------
class TestWorkerShard:
    def test_shard_drain_and_absorb_are_deterministic(self):
        def make_shard():
            shard = WorkerShardRecorder(with_spans=True)
            for cid in (3, 1):
                shard.client_task(client_id=cid, round_idx=0, dur_s=0.01,
                                  n_samples=10, flops=1e5, bytes_up=256)
            return shard.drain()

        # Drained payloads are plain picklable data and identical per task
        # stream, so absorbing them in task order is deterministic.
        import pickle

        p1, p2 = make_shard(), make_shard()
        spans1 = [{k: v for k, v in s.items() if k != "t_start"}
                  for s in p1["spans"]]
        spans2 = [{k: v for k, v in s.items() if k != "t_start"}
                  for s in p2["spans"]]
        assert p1["metrics"] == p2["metrics"]
        assert spans1 == spans2
        assert pickle.loads(pickle.dumps(p1))["metrics"] == p1["metrics"]

        exp = ListExporter()
        rec = Recorder(exporter=exp)
        rec.begin_round(0)
        rec.begin_phase("local_train")
        rec.absorb(p1)
        rec.absorb(p2)
        rec.end_phase(dur_s=0.1)
        rec.close()
        tasks = [s for s in exp.records if s["kind"] == "client_task"]
        assert [t["client"] for t in tasks] == [3, 1, 3, 1]
        assert all(t["shard"] for t in tasks)
        assert [t["span"] for t in tasks] == sorted(t["span"] for t in tasks)
        assert rec.metrics.get("fl_client_tasks_total").value == 4.0

    def test_shard_without_spans_ships_metrics_only(self):
        shard = WorkerShardRecorder(with_spans=False)
        shard.client_task(client_id=0, round_idx=0, dur_s=0.01, n_samples=10,
                          flops=1e5, bytes_up=256)
        payload = shard.drain()
        assert "spans" not in payload
        assert payload["metrics"]["fl_client_tasks_total"]["value"] == 1.0


# ---------------------------------------------------------------------------
# the run-level contract
# ---------------------------------------------------------------------------
GRID = [("serial", "sync"), ("serial", "semisync"), ("serial", "async"),
        ("threaded", "sync"), ("threaded", "semisync"), ("threaded", "async"),
        ("process", "sync"), ("process", "semisync"), ("process", "async")]


def _strip_host_time(history):
    records = []
    for rec in history.to_dict()["records"]:
        rec = dict(rec)
        rec.pop("wall_seconds")
        rec.pop("phase_seconds")
        records.append(rec)
    return records


class TestTracingDoesNotPerturb:
    @pytest.mark.parametrize("executor,mode", GRID)
    def test_history_identical_with_tracing_on(self, executor, mode, tmp_path):
        kwargs = dict(executor=executor, mode=mode, seed=11)
        if executor != "serial":
            kwargs["n_workers"] = 2
        trace = tmp_path / f"{executor}_{mode}.jsonl"
        metrics = tmp_path / f"{executor}_{mode}.prom"
        h_off = run_experiment(tiny_spec(**kwargs))
        h_on = run_experiment(tiny_spec(
            **kwargs, trace=str(trace), metrics_out=str(metrics)))
        assert _strip_host_time(h_on) == _strip_host_time(h_off), (
            f"tracing perturbed the {executor}/{mode} history")
        spans = [json.loads(line) for line in trace.read_text().splitlines()]
        rounds = [s for s in spans if s["kind"] == "round"]
        assert len(rounds) == TINY["rounds"]
        assert any(s["kind"] == "client_task" for s in spans)
        ids = {s["span"] for s in spans}
        assert all(s["parent"] in ids for s in spans if s["parent"] is not None)
        assert "fl_rounds_total 2" in metrics.read_text()

    def test_spec_flags_do_not_change_cell_key(self, tmp_path):
        plain = tiny_spec()
        traced = tiny_spec(trace=str(tmp_path / "t.jsonl"),
                           metrics_out=str(tmp_path / "m.prom"))
        assert plain.cell_key() == traced.cell_key()
        assert traced.to_dict()["trace"] == str(tmp_path / "t.jsonl")
        round_trip = ExperimentSpec.from_dict(traced.to_dict())
        assert round_trip.metrics_out == traced.metrics_out

    def test_history_phase_seconds_accessor_and_persistence(self, tmp_path):
        from repro.io.persistence import load_history, save_history

        history = run_experiment(tiny_spec())
        totals = history.phase_seconds_totals()
        assert totals and all(v >= 0 for v in totals.values())
        assert "local_train" in totals
        path = tmp_path / "history.json"
        save_history(history, str(path))
        loaded = load_history(str(path))
        assert [r.phase_seconds for r in loaded.records] == [
            r.phase_seconds for r in history.records]
