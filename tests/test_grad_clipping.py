"""Gradient clipping: the stability lever for aggressive mu/xi/lr regimes."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FLConfig, Simulation, build_federated_data, build_strategy
from repro.nn import Parameter, clip_grad_norm, global_grad_norm


def _params_with_grads(values):
    out = []
    for v in values:
        p = Parameter(np.zeros_like(np.asarray(v, dtype=np.float32)))
        p.grad[...] = v
        out.append(p)
    return out


class TestClipGradNorm:
    def test_norm_computation(self):
        params = _params_with_grads([np.array([3.0, 0.0]), np.array([[4.0]])])
        assert global_grad_norm(params) == pytest.approx(5.0)

    def test_clips_to_max(self):
        params = _params_with_grads([np.array([3.0, 4.0])])
        pre = clip_grad_norm(params, 1.0)
        assert pre == pytest.approx(5.0)
        assert global_grad_norm(params) == pytest.approx(1.0, rel=1e-5)

    def test_direction_preserved(self):
        params = _params_with_grads([np.array([3.0, 4.0])])
        clip_grad_norm(params, 1.0)
        np.testing.assert_allclose(params[0].grad, [0.6, 0.8], rtol=1e-5)

    def test_no_clip_when_small(self):
        params = _params_with_grads([np.array([0.3, 0.4])])
        clip_grad_norm(params, 1.0)
        np.testing.assert_allclose(params[0].grad, [0.3, 0.4])

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm(_params_with_grads([np.array([1.0])]), 0.0)


class TestClippingInSimulation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FLConfig(max_grad_norm=0.0)

    def test_clipping_changes_trajectory(self, tiny_data):
        accs = {}
        for clip in (None, 0.01):
            cfg = FLConfig(rounds=3, n_clients=6, clients_per_round=3,
                           batch_size=20, lr=0.05, seed=1, max_grad_norm=clip)
            sim = Simulation(tiny_data, build_strategy("fedavg"), cfg, model_name="mlp")
            accs[clip] = sim.run().accuracies()
            sim.close()
        assert not np.allclose(accs[None], accs[0.01])

    def test_clipping_keeps_hot_fedtrip_finite_and_learning(self):
        """The Fig. 7 hot regime (large mu, staleness xi, momentum):
        clipping bounds every step so the run stays finite and learns."""
        data = build_federated_data("mini_mnist", n_clients=10,
                                    partition="dirichlet", alpha=0.5, seed=0)
        cfg = FLConfig(rounds=12, n_clients=10, clients_per_round=4,
                       batch_size=50, lr=0.03, seed=0, max_grad_norm=1.0)
        sim = Simulation(data, build_strategy("fedtrip", mu=2.5), cfg,
                         model_name="mlp")
        hist = sim.run()
        assert all(np.isfinite(w).all() for w in sim.server.weights)
        assert hist.accuracies()[-1] > 30.0
        sim.close()

    def test_clipping_applies_to_moon_and_fedgkd(self, tiny_data):
        for method in ("moon", "fedgkd"):
            cfg = FLConfig(rounds=2, n_clients=6, clients_per_round=3,
                           batch_size=20, lr=0.05, seed=1, max_grad_norm=0.5)
            sim = Simulation(tiny_data, build_strategy(method), cfg, model_name="mlp")
            hist = sim.run()
            assert np.isfinite(hist.accuracies()).all()
            sim.close()
