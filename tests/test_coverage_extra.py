"""Additional cross-cutting coverage: threading x algorithms, model/dataset
matrix smoke tests, persistence round-trips through real simulations."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FLConfig, Simulation, build_federated_data, build_strategy
from repro.data import generate_dataset, get_spec
from repro.io import load_history, save_history


class TestThreadedAlgorithms:
    """Threaded execution must be bit-identical to serial for stateful
    strategies too (worker contexts own model replicas; client state is
    shared but only touched by one worker at a time)."""

    @pytest.mark.parametrize("method", ["moon", "fedgkd", "scaffold", "feddyn"])
    def test_threaded_matches_serial(self, tiny_data, small_config, method):
        hists = []
        for workers in (1, 2):
            strat = build_strategy(method, model="mlp", dataset="tiny")
            sim = Simulation(tiny_data, strat, small_config, model_name="mlp",
                             n_workers=workers)
            hists.append(sim.run().accuracies())
            sim.close()
        np.testing.assert_allclose(hists[0], hists[1], atol=1e-5)


class TestModelDatasetMatrix:
    @pytest.mark.parametrize("model", ["mlp", "cnn"])
    @pytest.mark.parametrize("dataset", ["tiny", "tiny_rgb"])
    def test_one_round_smoke(self, model, dataset):
        data = build_federated_data(dataset, n_clients=4, partition="iid", seed=0)
        cfg = FLConfig(rounds=1, n_clients=4, clients_per_round=2,
                       batch_size=20, lr=0.05, seed=0)
        sim = Simulation(data, build_strategy("fedtrip"), cfg, model_name=model)
        rec = sim.run_round()
        assert rec.test_accuracy is not None
        sim.close()

    def test_alexnet_smoke(self):
        data = build_federated_data("tiny_rgb", n_clients=4, partition="iid", seed=0)
        cfg = FLConfig(rounds=1, n_clients=4, clients_per_round=2,
                       batch_size=20, lr=0.02, seed=0)
        sim = Simulation(data, build_strategy("fedavg"), cfg, model_name="alexnet")
        rec = sim.run_round()
        assert rec.test_accuracy is not None
        sim.close()


class TestPaperScaleSpecsGenerate:
    """Paper-scale specs must generate correctly when sizes are overridden
    (full 60k-sample generation is out of test budget, 300 samples is not)."""

    @pytest.mark.parametrize("name", ["mnist", "fmnist", "emnist", "cifar10"])
    def test_generates_with_override(self, name):
        data = generate_dataset(name, seed=0, train_size=300, test_size=60)
        spec = get_spec(name)
        assert data.x_train.shape == (300, *spec.input_shape)
        assert int(data.y_train.max()) <= spec.num_classes - 1
        assert np.isfinite(data.x_train).all()


class TestHistoryPersistenceViaSimulation:
    def test_simulated_history_roundtrips(self, tiny_data, small_config, tmp_path):
        sim = Simulation(tiny_data, build_strategy("fedtrip"), small_config,
                         model_name="mlp")
        hist = sim.run()
        sim.close()
        path = save_history(hist, str(tmp_path / "h.json"))
        back = load_history(path)
        np.testing.assert_allclose(back.accuracies(), hist.accuracies())
        assert back.rounds_to_accuracy(50.0) == hist.rounds_to_accuracy(50.0)
        assert back.final_accuracy_stats() == hist.final_accuracy_stats()


class TestSamplerPluggability:
    def test_weighted_sampler_in_simulation(self, tiny_data, small_config):
        from repro.fl import WeightedSampler

        sampler = WeightedSampler([1.0] * 6, clients_per_round=3, seed=0)
        sim = Simulation(tiny_data, build_strategy("fedavg"), small_config,
                         model_name="mlp", sampler=sampler)
        hist = sim.run()
        assert len(hist) == small_config.rounds
        sim.close()

    def test_participation_skew_changes_selection_counts(self, tiny_data, small_config):
        from collections import Counter

        from repro.fl import WeightedSampler

        sampler = WeightedSampler([10, 10, 10, 0.1, 0.1, 0.1], 3, seed=0)
        counts: Counter = Counter()
        for t in range(50):
            counts.update(sampler.select(t))
        assert counts[0] > counts[3]
