"""The Byzantine-robust subsystem: aggregation rules on the stacked matrix,
seeded adversary models, registry plumbing, spec/CLI validation, the
server's screening/drop report, and the History/persistence round-trip of
the new aggregation-health fields."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.api import ExperimentSpec, run_experiment
from repro.fl.aggregation import weighted_average_flat, weighted_average_trees_loop
from repro.fl.history import History
from repro.fl.robust import (
    available_adversaries,
    available_aggregators,
    build_adversary,
    build_aggregator,
    register_adversary,
    register_aggregator,
    robust_aggregate,
)
from repro.fl.robust.adversaries import Adversary, adversary_roster
from repro.fl.robust.aggregators import MultiKrum, RobustAggregator
from repro.fl.server import Server
from repro.fl.types import ClientUpdate, FLConfig, RoundRecord
from repro.io.persistence import load_history, save_history
from repro.algorithms.registry import build_strategy


def make_updates(vectors, shapes=((3, 2), (4,)), num_samples=None):
    """Wrap flat float32 vectors as ClientUpdates with the given tree shapes."""
    out = []
    for i, vec in enumerate(vectors):
        flat = np.asarray(vec, dtype=np.float32)
        out.append(
            ClientUpdate.from_flat(
                flat, [tuple(s) for s in shapes],
                client_id=i,
                num_samples=(num_samples[i] if num_samples else 10),
                train_loss=0.5,
            )
        )
    return out


P = 10  # total params of the ((3,2),(4,)) tree


class TestAggregators:
    def test_registry_lists_builtins(self):
        assert {"mean", "coordinate_median", "trimmed_mean", "norm_clip",
                "norm_screen", "krum", "multi_krum"} <= set(available_aggregators())

    def test_unknown_name_and_bad_kwargs_raise(self):
        with pytest.raises(ValueError, match="unknown aggregator"):
            build_aggregator("resilient_mean")
        with pytest.raises(ValueError, match="bad arguments"):
            build_aggregator("trimmed_mean", gamma=2.0)

    def test_mean_matches_gemm_baseline(self):
        rng = np.random.default_rng(0)
        updates = make_updates(rng.standard_normal((4, P)), num_samples=[1, 2, 3, 4])
        agg = build_aggregator("mean")
        tree, screened = robust_aggregate(agg, updates, updates[0].weights)
        assert screened == []
        mat = np.stack([u.flat_vector().astype(np.float64) for u in updates])
        expected = weighted_average_flat(mat, [1, 2, 3, 4])
        np.testing.assert_allclose(
            np.concatenate([a.ravel() for a in tree]), expected.astype(np.float32))

    def test_coordinate_median_ignores_one_wild_outlier(self):
        vecs = np.ones((5, P), dtype=np.float32)
        vecs[2] = 1e6  # one adversarial row
        updates = make_updates(vecs)
        tree, screened = robust_aggregate(
            build_aggregator("coordinate_median"), updates, updates[0].weights)
        np.testing.assert_array_equal(
            np.concatenate([a.ravel() for a in tree]), np.ones(P, np.float32))
        assert screened == []

    def test_trimmed_mean_cuts_extremes(self):
        # 5 rows valued 0..4 per coordinate; beta=0.2 cuts one from each end.
        vecs = np.tile(np.arange(5, dtype=np.float32)[:, None], (1, P))
        updates = make_updates(vecs)
        tree, _ = robust_aggregate(
            build_aggregator("trimmed_mean", beta=0.2), updates, updates[0].weights)
        np.testing.assert_allclose(
            np.concatenate([a.ravel() for a in tree]), np.full(P, 2.0, np.float32))

    def test_trimmed_mean_beta_zero_is_unweighted_mean(self):
        rng = np.random.default_rng(1)
        vecs = rng.standard_normal((4, P)).astype(np.float32)
        updates = make_updates(vecs)
        tree, _ = robust_aggregate(
            build_aggregator("trimmed_mean", beta=0.0), updates, updates[0].weights)
        np.testing.assert_allclose(
            np.concatenate([a.ravel() for a in tree]),
            vecs.astype(np.float64).mean(axis=0).astype(np.float32), rtol=1e-6)

    def test_trimmed_mean_rejects_bad_beta(self):
        with pytest.raises(ValueError, match="beta"):
            build_aggregator("trimmed_mean", beta=0.5)

    def test_norm_screen_drops_largest_delta_and_reports_id(self):
        g = np.zeros(P, np.float32)
        vecs = 0.1 * np.ones((4, P), dtype=np.float32)
        vecs[3] = 50.0
        updates = make_updates(vecs)
        tree, screened = robust_aggregate(
            build_aggregator("norm_screen", f=1), updates,
            [np.zeros((3, 2), np.float32), np.zeros(4, np.float32)],
            global_flat=g)
        assert screened == [3]
        np.testing.assert_allclose(
            np.concatenate([a.ravel() for a in tree]),
            np.full(P, 0.1, np.float32), rtol=1e-6)

    def test_norm_screen_refuses_to_drop_everyone(self):
        updates = make_updates(np.ones((2, P), np.float32))
        with pytest.raises(ValueError, match="every one"):
            robust_aggregate(
                build_aggregator("norm_screen", f=2), updates, updates[0].weights)

    def test_norm_clip_attenuates_scaled_update(self):
        g = np.zeros(P, np.float32)
        vecs = np.ones((4, P), dtype=np.float32)
        vecs[0] = 100.0  # boosted update, same direction
        updates = make_updates(vecs)
        tree, screened = robust_aggregate(
            build_aggregator("norm_clip"), updates,
            [np.zeros((3, 2), np.float32), np.zeros(4, np.float32)],
            global_flat=g)
        out = np.concatenate([a.ravel().astype(np.float64) for a in tree])
        assert screened == []
        # Median norm caps the outlier at honest magnitude: all rows clip to
        # the same delta, so the mean is ~1 per coordinate, not ~25.
        np.testing.assert_allclose(out, np.ones(P), rtol=1e-5)

    def test_krum_selects_the_cluster_not_the_outlier(self):
        rng = np.random.default_rng(2)
        honest = 0.01 * rng.standard_normal((5, P))
        vecs = np.vstack([honest, 100.0 + np.zeros((1, P))]).astype(np.float32)
        updates = make_updates(vecs)
        tree, screened = robust_aggregate(
            build_aggregator("krum", f=1), updates, updates[0].weights)
        out = np.concatenate([a.ravel() for a in tree])
        assert 5 in screened  # the outlier never wins Krum
        assert np.abs(out).max() < 1.0

    def test_multi_krum_m_defaults_to_k_minus_f(self):
        updates = make_updates(np.ones((6, P), np.float32))
        agg = build_aggregator("multi_krum", f=2)
        _, screened = robust_aggregate(agg, updates, updates[0].weights)
        assert len(screened) == 2  # K - (K - f) rows screened

    def test_multi_krum_needs_f_plus_3_clients(self):
        updates = make_updates(np.ones((3, P), np.float32))
        with pytest.raises(ValueError, match="f \\+ 3"):
            robust_aggregate(MultiKrum(f=1), updates, updates[0].weights)

    def test_mixed_dtype_tree_fallback(self):
        # Mixed-dtype trees have no flat vector; stacking must take the
        # per-layer path and the output must restore per-layer dtypes.
        trees = []
        for v in (1.0, 2.0, 3.0):
            trees.append([
                np.full((3, 2), v, np.float32), np.full(4, v, np.float64)])
        updates = [
            ClientUpdate(client_id=i, weights=t, num_samples=10, train_loss=0.1)
            for i, t in enumerate(trees)
        ]
        assert all(u.flat_vector() is None for u in updates)
        tree, screened = robust_aggregate(
            build_aggregator("coordinate_median"), updates, trees[0])
        assert tree[0].dtype == np.float32 and tree[1].dtype == np.float64
        np.testing.assert_allclose(tree[0], np.full((3, 2), 2.0))
        np.testing.assert_allclose(tree[1], np.full(4, 2.0))

    def test_structure_mismatch_raises(self):
        a = make_updates(np.ones((1, P), np.float32))[0]
        b = ClientUpdate(
            client_id=1,
            weights=[np.ones(6, np.float32), np.ones((2, 2), np.float32)],
            num_samples=10, train_loss=0.1)
        with pytest.raises(ValueError, match="structure mismatch"):
            robust_aggregate(build_aggregator("coordinate_median"), [a, b], a.weights)

    def test_custom_rule_registers(self):
        class FirstWins(RobustAggregator):
            name = "first_wins"

            def reduce(self, mat, weights, global_flat):
                return mat[0].copy(), [0]

        register_aggregator("first_wins", FirstWins)
        try:
            updates = make_updates(np.arange(3 * P, dtype=np.float32).reshape(3, P))
            tree, screened = robust_aggregate(
                build_aggregator("first_wins"), updates, updates[0].weights)
            assert screened == [1, 2]
            np.testing.assert_array_equal(
                np.concatenate([a.ravel() for a in tree]),
                np.arange(P, dtype=np.float32))
        finally:
            from repro.fl.robust.aggregators import _AGGREGATORS

            _AGGREGATORS.pop("first_wins", None)


class TestWeightedAverageHardening:
    """Satellite: clear errors on degenerate weights, K=1 pinned."""

    def test_all_zero_weights_raise_clear_error_flat(self):
        mat = np.ones((3, 4))
        with pytest.raises(ValueError, match="sum to zero"):
            weighted_average_flat(mat, [0.0, 0.0, 0.0])

    def test_all_zero_weights_raise_clear_error_tree_loop(self):
        trees = [[np.ones(3, np.float32)] for _ in range(2)]
        with pytest.raises(ValueError, match="sum to zero"):
            weighted_average_trees_loop(trees, [0.0, 0.0])

    def test_negative_and_nonfinite_weights_get_distinct_errors(self):
        mat = np.ones((2, 4))
        with pytest.raises(ValueError, match="non-negative"):
            weighted_average_flat(mat, [1.0, -1.0])
        with pytest.raises(ValueError, match="finite"):
            weighted_average_flat(mat, [1.0, np.nan])

    def test_k1_average_returns_the_single_row_exactly(self):
        row = np.random.default_rng(3).standard_normal(7)
        out = weighted_average_flat(row[None, :], [5.0])
        np.testing.assert_array_equal(out, row)

    def test_k1_tree_loop_returns_the_single_tree_exactly(self):
        tree = [np.random.default_rng(4).standard_normal((2, 3)).astype(np.float32)]
        out = weighted_average_trees_loop([tree], [3.0])
        np.testing.assert_array_equal(out[0], tree[0])


class TestAdversaries:
    def test_registry_lists_builtins(self):
        assert {"sign_flip", "scale", "gauss_noise", "label_flip",
                "collude"} <= set(available_adversaries())

    def test_roster_is_deterministic_and_sized(self):
        a = adversary_roster(64, 0.25, seed=7)
        b = adversary_roster(64, 0.25, seed=7)
        assert a == b and len(a) == 16
        assert adversary_roster(64, 0.25, seed=8) != a  # seed actually matters
        assert adversary_roster(10, 0.0, seed=7) == ()

    def test_build_requires_positive_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            build_adversary("sign_flip", n_clients=10, fraction=0.0, seed=0)

    def test_unknown_name_and_bad_kwargs_raise(self):
        with pytest.raises(ValueError, match="unknown adversary"):
            build_adversary("byzantine", n_clients=10, fraction=0.5, seed=0)
        with pytest.raises(ValueError, match="bad arguments"):
            build_adversary("sign_flip", n_clients=10, fraction=0.5, seed=0, sigma=1.0)

    def test_sign_flip_reflects_delta_about_global(self):
        adv = build_adversary("sign_flip", n_clients=4, fraction=0.5, seed=0, gamma=2.0)
        u = make_updates([np.full(P, 3.0, np.float32)])[0]
        g = np.ones(P, np.float32)
        out = adv.corrupt_update(u, 0, g, None)
        # g - gamma*(w - g) = 1 - 2*2 = -3
        np.testing.assert_allclose(out.flat_vector(), np.full(P, -3.0, np.float32))
        assert out.client_id == u.client_id and out.num_samples == u.num_samples

    def test_scale_boosts_delta(self):
        adv = build_adversary("scale", n_clients=4, fraction=0.5, seed=0, gamma=10.0)
        u = make_updates([np.full(P, 2.0, np.float32)])[0]
        g = np.ones(P, np.float32)
        out = adv.corrupt_update(u, 0, g, None)
        np.testing.assert_allclose(out.flat_vector(), np.full(P, 11.0, np.float32))

    def test_gauss_noise_keyed_by_client_and_round(self):
        adv = build_adversary("gauss_noise", n_clients=4, fraction=0.5, seed=0)
        u = make_updates([np.zeros(P, np.float32)])[0]
        g = np.zeros(P, np.float32)
        a = adv.corrupt_update(u, 0, g, None).flat_vector()
        b = adv.corrupt_update(u, 0, g, None).flat_vector()
        c = adv.corrupt_update(u, 1, g, None).flat_vector()
        np.testing.assert_array_equal(a, b)  # replayable
        assert not np.array_equal(a, c)      # fresh per round

    def test_colluders_submit_identical_vectors(self):
        adv = build_adversary("collude", n_clients=4, fraction=0.5, seed=0)
        u0, u1 = make_updates(np.random.default_rng(5).standard_normal((2, P)))
        g = np.zeros(P, np.float32)
        a = adv.corrupt_update(u0, 3, g, None).flat_vector()
        b = adv.corrupt_update(u1, 3, g, None).flat_vector()
        np.testing.assert_array_equal(a, b)
        c = adv.corrupt_update(u0, 4, g, None).flat_vector()
        assert not np.array_equal(a, c)

    def test_label_flip_poisons_only_roster_shards(self):
        from repro.data import build_federated_data
        from repro.fl.client import Client

        data = build_federated_data("tiny", n_clients=4, partition="iid", seed=0)
        clients = [Client(k, data.client_dataset(k), seed=0) for k in range(4)]
        originals = [c.dataset.y.copy() for c in clients]
        adv = build_adversary("label_flip", n_clients=4, fraction=0.25, seed=0)
        adv.poison_clients(clients, num_classes=4)
        for c, y0 in zip(clients, originals):
            if adv.is_adversary(c.id):
                np.testing.assert_array_equal(c.dataset.y, 3 - y0)
            else:
                np.testing.assert_array_equal(c.dataset.y, y0)

    def test_adversary_pickles(self):
        adv = build_adversary("collude", n_clients=8, fraction=0.25, seed=3, gamma=2.0)
        clone = pickle.loads(pickle.dumps(adv))
        assert clone.ids == adv.ids and clone.gamma == adv.gamma
        u = make_updates([np.zeros(P, np.float32)])[0]
        g = np.zeros(P, np.float32)
        np.testing.assert_array_equal(
            adv.corrupt_update(u, 0, g, None).flat_vector(),
            clone.corrupt_update(u, 0, g, None).flat_vector())

    def test_custom_adversary_registers(self):
        class Zeroer(Adversary):
            name = "zeroer"

            def corrupt_update(self, update, round_idx, global_flat, global_weights):
                return self._rewrite(update, global_flat, global_weights,
                                     lambda w, g: np.zeros_like(w))

        register_adversary("zeroer", Zeroer)
        try:
            adv = build_adversary("zeroer", n_clients=4, fraction=0.5, seed=0)
            u = make_updates([np.ones(P, np.float32)])[0]
            out = adv.corrupt_update(u, 0, np.zeros(P, np.float32), None)
            np.testing.assert_array_equal(out.flat_vector(), np.zeros(P, np.float32))
        finally:
            from repro.fl.robust.adversaries import _ADVERSARIES

            _ADVERSARIES.pop("zeroer", None)


class TestServerIntegration:
    def _server(self, aggregator=None):
        weights = [np.zeros((3, 2), np.float32), np.zeros(4, np.float32)]
        config = FLConfig(rounds=2, n_clients=4, clients_per_round=4,
                          batch_size=10, lr=0.1, seed=0)
        return Server(weights, build_strategy("fedavg"), config,
                      aggregator=aggregator)

    def test_robust_path_screens_and_reports(self):
        server = self._server(build_aggregator("norm_screen", f=1))
        vecs = 0.1 * np.ones((4, P), dtype=np.float32)
        vecs[2] = 40.0
        server.apply_updates(make_updates(vecs))
        assert server.last_screened == [2]
        assert server.last_dropped == [] and not server.last_skipped
        np.testing.assert_allclose(server.flat_weights,
                                   np.full(P, 0.1, np.float32), rtol=1e-6)

    def test_dropped_ids_reported_and_reset(self):
        server = self._server(build_aggregator("coordinate_median"))
        vecs = np.ones((4, P), dtype=np.float32)
        updates = make_updates(vecs)
        bad = np.full(P, np.nan, np.float32)
        updates[1] = ClientUpdate.from_flat(
            bad, [(3, 2), (4,)], client_id=1, num_samples=10, train_loss=0.1)
        server.apply_updates(updates)
        assert server.last_dropped == [1]
        server.apply_updates(make_updates(vecs))
        assert server.last_dropped == []  # report resets per round

    def test_all_bad_round_skips_and_flags(self):
        server = self._server(build_aggregator("coordinate_median"))
        bad = np.full((2, P), np.inf, np.float32)
        server.apply_updates(make_updates(bad))
        assert server.last_skipped and server.skipped_rounds == 1
        np.testing.assert_array_equal(server.flat_weights, np.zeros(P, np.float32))

    def test_aggregator_rejects_strategy_with_custom_aggregate(self):
        weights = [np.zeros((3, 2), np.float32), np.zeros(4, np.float32)]
        config = FLConfig(rounds=2, n_clients=4, clients_per_round=4,
                          batch_size=10, lr=0.1, seed=0)
        with pytest.raises(ValueError, match="override"):
            Server(weights, build_strategy("fednova"), config,
                   aggregator=build_aggregator("coordinate_median"))


class TestSpecAndPersistence:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="aggregator_kwargs"):
            ExperimentSpec(aggregator="mean", aggregator_kwargs={"beta": 0.1})
        with pytest.raises(ValueError, match="attacks nobody"):
            ExperimentSpec(adversary="sign_flip")
        with pytest.raises(ValueError, match="does nothing"):
            ExperimentSpec(adversary_fraction=0.5)
        with pytest.raises(ValueError, match="adversary_kwargs"):
            ExperimentSpec(adversary_kwargs={"gamma": 2.0})
        with pytest.raises(ValueError, match="adversary_fraction"):
            ExperimentSpec(adversary="sign_flip", adversary_fraction=1.5)

    def test_spec_round_trips_and_hashes(self):
        spec = ExperimentSpec(aggregator="trimmed_mean",
                              aggregator_kwargs={"beta": 0.25},
                              adversary="collude", adversary_fraction=0.25,
                              adversary_kwargs={"gamma": 2.0})
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec and clone.cell_key() == spec.cell_key()
        assert spec.cell_key() != ExperimentSpec().cell_key()

    def test_spec_builders(self):
        spec = ExperimentSpec(aggregator="multi_krum",
                              aggregator_kwargs={"f": 2, "m": 3},
                              adversary="scale", adversary_fraction=0.2,
                              adversary_kwargs={"gamma": 4.0})
        agg = spec.build_aggregator()
        assert agg.f == 2 and agg.m == 3
        adv = spec.build_adversary()
        assert adv.gamma == 4.0 and adv.n_clients == spec.n_clients
        assert ExperimentSpec().build_aggregator() is None
        assert ExperimentSpec().build_adversary() is None

    def test_history_round_trip_preserves_health_fields(self, tmp_path):
        hist = History()
        hist.append(RoundRecord(
            round_idx=0, selected=[0, 1, 2], test_accuracy=50.0, test_loss=1.0,
            mean_train_loss=0.8, cumulative_flops=1e6, cumulative_comm_bytes=1e4,
            wall_seconds=0.1, dropped_clients=[2], screened_clients=[1],
            adversary_clients=[1], round_skipped=False))
        hist.append(RoundRecord(
            round_idx=1, selected=[0, 3], test_accuracy=None, test_loss=None,
            mean_train_loss=0.7, cumulative_flops=2e6, cumulative_comm_bytes=2e4,
            wall_seconds=0.1, round_skipped=True))
        path = str(tmp_path / "hist.json")
        save_history(hist, path)
        loaded = load_history(path)
        assert [r.to_dict() for r in loaded.records] == [r.to_dict() for r in hist.records]
        assert loaded.skipped_rounds() == 1
        assert loaded.dropped_client_ids() == [2]
        assert loaded.screened_client_ids() == [1]
        assert loaded.adversary_hit_rate() == 1.0

    def test_legacy_history_files_still_load(self, tmp_path):
        import json

        payload = {"records": [{
            "round": 0, "selected": [0], "test_accuracy": 10.0,
            "test_loss": 2.0, "mean_train_loss": 1.0, "cumulative_flops": 1.0,
            "cumulative_comm_bytes": 1.0, "wall_seconds": 0.1}],
            "stop_reason": None}
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(payload))
        loaded = load_history(str(path))
        rec = loaded.records[0]
        assert rec.dropped_clients == [] and rec.screened_clients == []
        assert rec.adversary_clients is None and rec.round_skipped is False


class TestEndToEnd:
    BASE = dict(dataset="tiny", model="mlp", method="fedavg", partition="iid",
                n_clients=4, clients_per_round=4, rounds=2, batch_size=20,
                lr=0.05, seed=0)

    def test_attack_labels_and_screening_land_in_history(self):
        spec = ExperimentSpec(**self.BASE, aggregator="norm_screen",
                              adversary="scale", adversary_fraction=0.25,
                              adversary_kwargs={"gamma": 50.0})
        hist = run_experiment(spec)
        for r in hist.records:
            assert r.adversary_clients  # the one roster member, sampled
            assert r.screened_clients == r.adversary_clients  # caught red-handed
        assert hist.adversary_hit_rate() == 1.0

    def test_no_adversary_leaves_labels_none(self):
        hist = run_experiment(ExperimentSpec(**self.BASE))
        assert all(r.adversary_clients is None for r in hist.records)
        assert all(not r.screened_clients for r in hist.records)

    def test_label_flip_trains_end_to_end(self):
        spec = ExperimentSpec(**self.BASE, aggregator="coordinate_median",
                              adversary="label_flip", adversary_fraction=0.25)
        hist = run_experiment(spec)
        assert len(hist) == 2
        assert np.isfinite(hist.accuracies()).all()

    def test_cli_flags_build_and_run(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "hist.json"
        rc = main(["train", "--dataset", "tiny", "--model", "mlp",
                   "--method", "fedavg", "--partition", "iid",
                   "--clients", "4", "--clients-per-round", "4",
                   "--rounds", "2", "--batch-size", "20",
                   "--aggregator", "trimmed_mean", "--aggregator-arg", "beta=0.25",
                   "--adversary", "sign_flip", "--adversary-fraction", "0.25",
                   "--adversary-arg", "gamma=3", "--out", str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "aggregator=trimmed_mean" in captured
        assert out.exists()
        loaded = load_history(str(out))
        assert all(r.adversary_clients for r in loaded.records)
