"""Data transforms (feature skew), client-availability samplers, and the
availability x process-executor composition (fixed-seed determinism; the
dropout replacement loop must terminate when the available pool < K)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    Compose,
    FixedContrast,
    FixedGain,
    FixedShift,
    GaussianNoise,
    RandomHorizontalFlip,
    RandomShift,
    client_feature_skew,
)
from repro.fl import DiurnalSampler, DropoutSampler


@pytest.fixture
def batch(rng):
    return rng.standard_normal((8, 1, 6, 6)).astype(np.float32)


class TestTransforms:
    def test_random_shift_preserves_content(self, batch, rng):
        out = RandomShift(2)(batch, rng)
        assert out.shape == batch.shape
        # Circular shift preserves per-sample sums exactly.
        np.testing.assert_allclose(out.sum(axis=(1, 2, 3)), batch.sum(axis=(1, 2, 3)),
                                   rtol=1e-5)

    def test_zero_shift_identity(self, batch, rng):
        np.testing.assert_array_equal(RandomShift(0)(batch, rng), batch)

    def test_hflip_probability_extremes(self, batch, rng):
        np.testing.assert_array_equal(RandomHorizontalFlip(0.0)(batch, rng), batch)
        flipped = RandomHorizontalFlip(1.0)(batch, rng)
        np.testing.assert_array_equal(flipped, batch[:, :, :, ::-1])

    def test_noise_zero_sigma_identity(self, batch, rng):
        np.testing.assert_array_equal(GaussianNoise(0.0)(batch, rng), batch)

    def test_noise_changes_values(self, batch, rng):
        out = GaussianNoise(0.5)(batch, rng)
        assert not np.array_equal(out, batch)
        assert out.dtype == np.float32

    def test_fixed_gain(self, batch, rng):
        np.testing.assert_allclose(FixedGain(2.0)(batch, rng), batch * 2, rtol=1e-6)

    def test_fixed_contrast_preserves_mean(self, batch, rng):
        out = FixedContrast(1.7)(batch, rng)
        np.testing.assert_allclose(
            out.mean(axis=(1, 2, 3)), batch.mean(axis=(1, 2, 3)), atol=1e-5
        )

    def test_fixed_shift_rolls(self, batch, rng):
        out = FixedShift(1, 2)(batch, rng)
        np.testing.assert_array_equal(out, np.roll(batch, (1, 2), axis=(2, 3)))

    def test_compose_order(self, batch, rng):
        t = Compose([FixedGain(2.0), FixedGain(3.0)])
        np.testing.assert_allclose(t(batch, rng), batch * 6, rtol=1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomShift(-1)
        with pytest.raises(ValueError):
            RandomHorizontalFlip(2.0)
        with pytest.raises(ValueError):
            GaussianNoise(-0.1)
        with pytest.raises(ValueError):
            FixedGain(0.0)


class TestClientFeatureSkew:
    def test_deterministic(self, batch, rng):
        p1 = client_feature_skew(4, seed=7)
        p2 = client_feature_skew(4, seed=7)
        for a, b in zip(p1, p2):
            np.testing.assert_array_equal(a(batch, rng), b(batch, rng))

    def test_clients_differ(self, batch, rng):
        pipes = client_feature_skew(4, seed=0)
        outs = [p(batch, rng) for p in pipes]
        assert not np.allclose(outs[0], outs[1])

    def test_count(self):
        assert len(client_feature_skew(7)) == 7

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            client_feature_skew(0)


class TestDropoutSampler:
    def test_returns_k_when_no_dropout(self):
        s = DropoutSampler(10, 4, dropout=0.0, seed=0)
        for t in range(10):
            assert len(s.select(t)) == 4

    def test_never_empty_under_heavy_dropout(self):
        s = DropoutSampler(10, 4, dropout=0.95, seed=0)
        for t in range(50):
            assert len(s.select(t)) >= 1

    def test_deterministic(self):
        a = DropoutSampler(10, 4, dropout=0.3, seed=1)
        b = DropoutSampler(10, 4, dropout=0.3, seed=1)
        assert all(a.select(t) == b.select(t) for t in range(10))

    def test_dropout_reduces_mean_round_size(self):
        none = DropoutSampler(6, 5, dropout=0.0, seed=0)
        heavy = DropoutSampler(6, 5, dropout=0.6, seed=0)
        mean_none = np.mean([len(none.select(t)) for t in range(100)])
        mean_heavy = np.mean([len(heavy.select(t)) for t in range(100)])
        assert mean_heavy < mean_none

    def test_validation(self):
        with pytest.raises(ValueError):
            DropoutSampler(4, 5)
        with pytest.raises(ValueError):
            DropoutSampler(4, 2, dropout=1.0)

    def test_simulation_integration(self, tiny_data, small_config):
        from repro import Simulation, build_strategy

        sampler = DropoutSampler(6, 3, dropout=0.3, seed=0)
        sim = Simulation(tiny_data, build_strategy("fedtrip"), small_config,
                         model_name="mlp", sampler=sampler)
        hist = sim.run()
        assert len(hist) == small_config.rounds
        sim.close()


class TestDiurnalSampler:
    def test_phases_partition_availability(self):
        s = DiurnalSampler(10, 2, phases=2, window=3, seed=0)
        early = s.available(0)        # phase 0: even clients
        late = s.available(3)         # phase 1: odd clients
        assert set(early) == {0, 2, 4, 6, 8}
        assert set(late) == {1, 3, 5, 7, 9}

    def test_selection_respects_phase(self):
        s = DiurnalSampler(10, 2, phases=2, window=3, seed=0)
        for t in range(12):
            pool = set(s.available(t))
            assert set(s.select(t)) <= pool

    def test_staleness_gap_structure(self, tiny_data):
        """Clients see long staleness gaps; FedTrip must stay stable."""
        from repro import FLConfig, Simulation, build_strategy

        cfg = FLConfig(rounds=8, n_clients=6, clients_per_round=2,
                       batch_size=20, lr=0.02, seed=0)
        sampler = DiurnalSampler(6, 2, phases=2, window=2, seed=0)
        sim = Simulation(tiny_data, build_strategy("fedtrip"), cfg,
                         model_name="mlp", sampler=sampler)
        hist = sim.run()
        assert np.isfinite([w for w in map(np.sum, sim.server.weights)]).all()
        assert hist.best_accuracy() > 20.0
        sim.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalSampler(10, 6, phases=2)  # 6 > 10//2
        with pytest.raises(ValueError):
            DiurnalSampler(10, 2, phases=0)


class TestAvailabilityWithProcessExecutor:
    """Churny samplers composed with the multiprocessing backend: pool
    workers must see the same selections and client states as serial runs,
    and a fixed seed must stay byte-identical across repeats."""

    @staticmethod
    def _spec(**overrides):
        from repro.api import ExperimentSpec

        base = dict(dataset="tiny", model="mlp", method="fedtrip", n_clients=4,
                    clients_per_round=2, rounds=2, batch_size=20, lr=0.05)
        return ExperimentSpec(**{**base, **overrides})

    @staticmethod
    def _records(hist):
        return [
            (r.round_idx, tuple(r.selected), r.mean_train_loss,
             r.test_accuracy, r.cumulative_flops, r.cumulative_comm_bytes)
            for r in hist.records
        ]

    @pytest.mark.parametrize("sampler,kwargs", [
        ("dropout", {"dropout": 0.4}),
        ("diurnal", {"phases": 2, "window": 1}),
    ])
    def test_process_runs_match_serial_and_repeat(self, sampler, kwargs):
        from repro.api import run_experiment

        serial = run_experiment(
            self._spec(sampler=sampler, sampler_kwargs=kwargs, executor="serial")
        )
        spec = self._spec(sampler=sampler, sampler_kwargs=kwargs,
                          executor="process", n_workers=2)
        first, second = run_experiment(spec), run_experiment(spec)
        assert self._records(first) == self._records(second)
        assert self._records(first) == self._records(serial)

    def test_dropout_replacement_loop_terminates_pool_smaller_than_k(self):
        """With K == N every dropped client shrinks the pool below K; the
        replacement loop must still terminate and keep the round alive."""
        s = DropoutSampler(4, 4, dropout=0.9, seed=0)
        for t in range(200):
            chosen = s.select(t)
            assert 1 <= len(chosen) <= 4
            assert len(set(chosen)) == len(chosen)

    def test_dropout_with_process_pool_smaller_than_k(self):
        """End to end: heavy dropout (rounds often train < K clients) on
        the process backend stays deterministic and completes."""
        from repro.api import run_experiment

        spec = self._spec(sampler="dropout", sampler_kwargs={"dropout": 0.8},
                          clients_per_round=4, executor="process", n_workers=2)
        first, second = run_experiment(spec), run_experiment(spec)
        assert self._records(first) == self._records(second)
        assert all(1 <= len(r.selected) <= 4 for r in first.records)
