"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    orthogonal_partition,
    partition_label_counts,
)
from repro.fl.aggregation import weighted_average_trees
from repro.fl.types import ClientUpdate
from repro.nn import functional as F
from repro.utils.vectorize import flatten_arrays, unflatten_like

# Bounded float arrays that keep float32 arithmetic well-conditioned.
_floats = st.floats(min_value=-100, max_value=100, allow_nan=False, width=32)


def _matrix(min_rows=1, max_rows=8, min_cols=2, max_cols=8):
    return hnp.arrays(
        np.float32,
        st.tuples(
            st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
        ),
        elements=_floats,
    )


class TestSoftmaxProperties:
    @given(_matrix())
    @settings(max_examples=50, deadline=None)
    def test_softmax_is_distribution(self, x):
        s = F.softmax(x, axis=1)
        assert (s >= 0).all()
        np.testing.assert_allclose(s.sum(axis=1), 1.0, atol=1e-4)

    @given(_matrix(), st.floats(min_value=-50, max_value=50, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_softmax_shift_invariant(self, x, c):
        np.testing.assert_allclose(
            F.softmax(x, axis=1), F.softmax(x + np.float32(c), axis=1), atol=1e-4
        )

    @given(_matrix())
    @settings(max_examples=50, deadline=None)
    def test_log_softmax_nonpositive(self, x):
        assert (F.log_softmax(x, axis=1) <= 1e-6).all()


class TestVectorizeProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 5), st.integers(1, 5)), min_size=1, max_size=5
        ),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_flatten_roundtrip(self, shapes, seed):
        rng = np.random.default_rng(seed)
        arrays = [rng.standard_normal(s).astype(np.float32) for s in shapes]
        back = unflatten_like(flatten_arrays(arrays), arrays)
        for a, b in zip(arrays, back):
            np.testing.assert_array_equal(a, b)

    @given(st.lists(st.integers(1, 20), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_flatten_length(self, sizes):
        arrays = [np.zeros(s, dtype=np.float32) for s in sizes]
        assert flatten_arrays(arrays).size == sum(sizes)


class TestPartitionProperties:
    @given(
        st.integers(2, 8),     # num classes
        st.integers(2, 6),     # clients
        st.integers(5, 30),    # samples per client
        st.floats(min_value=0.05, max_value=10.0),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_dirichlet_exact_disjoint_cover(self, c, k, m, alpha, seed):
        rng = np.random.default_rng(seed)
        n = k * m * 3  # plenty of stock
        labels = rng.integers(0, c, size=n)
        shards = dirichlet_partition(labels, k, m, rng, alpha=alpha, num_classes=c)
        allidx = np.concatenate(shards)
        assert len(allidx) == k * m
        assert len(set(allidx.tolist())) == k * m
        counts = partition_label_counts(labels, shards, c)
        assert counts.sum() == k * m

    @given(st.integers(2, 6), st.integers(5, 30), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_iid_disjoint_cover(self, k, m, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 4, size=k * m * 2)
        shards = iid_partition(labels, k, m, rng)
        allidx = np.concatenate(shards)
        assert len(set(allidx.tolist())) == k * m

    @given(st.integers(2, 5), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_orthogonal_class_disjointness(self, n_clusters, seed):
        rng = np.random.default_rng(seed)
        c = 10
        labels = np.repeat(np.arange(c), 100)
        rng.shuffle(labels)
        shards = orthogonal_partition(labels, n_clusters * 2, 20, rng, n_clusters=n_clusters)
        counts = partition_label_counts(labels, shards, c)
        owners = {}
        for k in range(len(shards)):
            for cls in np.flatnonzero(counts[k]):
                owners.setdefault(int(cls), set()).add(k % n_clusters)
        # Every class is owned by exactly one cluster.
        assert all(len(v) == 1 for v in owners.values())


class TestAggregationProperties:
    @given(
        st.integers(1, 6),
        st.integers(1, 5),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_average_within_convex_hull(self, n_trees, n_layers, seed):
        rng = np.random.default_rng(seed)
        shapes = [(rng.integers(1, 4), rng.integers(1, 4)) for _ in range(n_layers)]
        trees = [
            [rng.standard_normal(s).astype(np.float32) for s in shapes]
            for _ in range(n_trees)
        ]
        weights = rng.random(n_trees) + 0.01
        out = weighted_average_trees(trees, weights)
        for i in range(n_layers):
            stack = np.stack([t[i] for t in trees])
            assert (out[i] >= stack.min(axis=0) - 1e-4).all()
            assert (out[i] <= stack.max(axis=0) + 1e-4).all()

    @given(st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_identical_models_fixed_point(self, n_clients, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((3, 2)).astype(np.float32)
        from repro.fl.aggregation import fedavg_aggregate

        ups = [
            ClientUpdate(i, [w.copy()], int(rng.integers(1, 100)), 0.0)
            for i in range(n_clients)
        ]
        out = fedavg_aggregate(ups)
        np.testing.assert_allclose(out[0], w, atol=1e-5)


class TestHistoryProperties:
    @given(
        st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=2, max_size=40),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_ema_bounded_by_series_range(self, accs, alpha):
        from repro.fl.history import History
        from repro.fl.types import RoundRecord

        h = History()
        for i, a in enumerate(accs):
            h.append(
                RoundRecord(i, [0], a, 0.0, 0.0, float(i), float(i), 0.0)
            )
        ema = h.ema_accuracy(alpha)
        assert (ema >= min(accs) - 1e-9).all()
        assert (ema <= max(accs) + 1e-9).all()

    @given(
        st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=40),
        st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_rounds_to_accuracy_is_first_hit(self, accs, target):
        from repro.fl.history import History
        from repro.fl.types import RoundRecord

        h = History()
        for i, a in enumerate(accs):
            h.append(RoundRecord(i, [0], a, 0.0, 0.0, float(i), float(i), 0.0))
        r = h.rounds_to_accuracy(target)
        hits = [i for i, a in enumerate(accs) if a >= target]
        assert r == (hits[0] + 1 if hits else None)


class TestTheoryProperties:
    @given(st.floats(min_value=1e-6, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_expected_xi_in_unit_interval(self, p):
        from repro.analysis import expected_xi

        v = expected_xi(p)
        assert 0 <= v <= 1.0 + 1e-12

    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.5, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_suggested_mu_always_descends(self, L, B):
        from repro.analysis import rho_positive, suggested_mu

        assert rho_positive(suggested_mu(L, B), L, B)
