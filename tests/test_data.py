"""Dataset specs, synthetic generation, array datasets and loaders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    available_datasets,
    generate_dataset,
    get_spec,
    make_prototypes,
)
from repro.utils.rng import RngStream


class TestSpecs:
    def test_paper_table2_values(self):
        """Table II: totals, classes, channels, client samples."""
        mnist = get_spec("mnist")
        assert (mnist.train_size, mnist.num_classes, mnist.channels, mnist.client_samples) == (
            60_000, 10, 1, 600,
        )
        fmnist = get_spec("fmnist")
        assert (fmnist.train_size, fmnist.client_samples) == (60_000, 1_000)
        emnist = get_spec("emnist")
        assert (emnist.num_classes, emnist.client_samples) == (47, 3_000)
        cifar = get_spec("cifar10")
        assert (cifar.train_size, cifar.channels, cifar.client_samples) == (50_000, 3, 2_000)

    def test_table2_row(self):
        row = get_spec("mnist").table2_row()
        assert row["dataset"] == "mnist" and row["classes"] == 10

    def test_unknown_spec(self):
        with pytest.raises(KeyError):
            get_spec("imagenet")

    def test_mini_variants_exist(self):
        names = available_datasets()
        for mini in ("mini_mnist", "mini_fmnist", "mini_emnist", "mini_cifar10"):
            assert mini in names

    def test_input_shape(self):
        assert get_spec("cifar10").input_shape == (3, 32, 32)
        assert get_spec("mnist").flat_dim == 784


class TestSyntheticGeneration:
    def test_shapes_and_dtypes(self):
        data = generate_dataset("tiny", seed=0)
        spec = data.spec
        assert data.x_train.shape == (spec.train_size, *spec.input_shape)
        assert data.x_train.dtype == np.float32
        assert data.y_train.dtype == np.int64
        assert data.prototypes.shape == (spec.num_classes, *spec.input_shape)

    def test_deterministic(self):
        a = generate_dataset("tiny", seed=3)
        b = generate_dataset("tiny", seed=3)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_test, b.y_test)

    def test_seeds_differ(self):
        a = generate_dataset("tiny", seed=1)
        b = generate_dataset("tiny", seed=2)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_label_balance(self):
        data = generate_dataset("tiny", seed=0)
        counts = np.bincount(data.y_train, minlength=data.num_classes)
        assert counts.min() >= (len(data.y_train) // data.num_classes) - 1

    def test_standardized(self):
        data = generate_dataset("tiny", seed=0)
        assert abs(float(data.x_train.mean())) < 0.05
        assert abs(float(data.x_train.std()) - 1.0) < 0.05

    def test_size_override(self):
        data = generate_dataset("mnist", seed=0, train_size=200, test_size=50)
        assert data.x_train.shape[0] == 200
        assert data.x_test.shape[0] == 50

    def test_classes_are_separable(self):
        """A nearest-prototype classifier should beat chance by a wide
        margin — otherwise no FL model could learn the task."""
        data = generate_dataset("tiny", seed=0)
        protos = data.prototypes.reshape(data.num_classes, -1)
        # Undo standardization effect by re-standardizing prototypes too.
        x = data.x_test.reshape(len(data.y_test), -1)
        protos_std = (protos - protos.mean()) / protos.std()
        x_n = x / np.linalg.norm(x, axis=1, keepdims=True)
        p_n = protos_std / np.linalg.norm(protos_std, axis=1, keepdims=True)
        pred = np.argmax(x_n @ p_n.T, axis=1)
        acc = float((pred == data.y_test).mean())
        assert acc > 2.0 / data.num_classes, f"separability too low: {acc:.3f}"

    def test_prototypes_unit_rms(self):
        spec = get_spec("tiny")
        protos = make_prototypes(spec, RngStream(0).child("p").generator)
        rms = np.sqrt((protos**2).mean(axis=(1, 2, 3)))
        np.testing.assert_allclose(rms, 1.0, atol=1e-5)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            generate_dataset("tiny", train_size=0)


class TestArrayDataset:
    def test_len_and_subset(self, rng):
        ds = ArrayDataset(rng.standard_normal((10, 2)), np.arange(10))
        sub = ds.subset([1, 3, 5])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.y, [1, 3, 5])

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.standard_normal((5, 2)), np.arange(4))

    def test_subset_out_of_range(self, rng):
        ds = ArrayDataset(rng.standard_normal((5, 2)), np.arange(5))
        with pytest.raises(IndexError):
            ds.subset([7])

    def test_class_counts(self):
        ds = ArrayDataset(np.zeros((6, 1)), np.array([0, 0, 1, 2, 2, 2]))
        np.testing.assert_array_equal(ds.class_counts(4), [2, 1, 3, 0])


class TestDataLoader:
    def test_covers_all_samples(self, rng):
        ds = ArrayDataset(np.arange(23, dtype=np.float32)[:, None], np.arange(23))
        loader = DataLoader(ds, batch_size=5, rng=rng)
        seen = np.concatenate([yb for _, yb in loader])
        assert sorted(seen.tolist()) == list(range(23))

    def test_drop_last(self, rng):
        ds = ArrayDataset(np.zeros((23, 1), dtype=np.float32), np.arange(23))
        loader = DataLoader(ds, batch_size=5, rng=rng, drop_last=True)
        batches = list(loader)
        assert len(batches) == 4
        assert all(xb.shape[0] == 5 for xb, _ in batches)

    def test_len(self, rng):
        ds = ArrayDataset(np.zeros((23, 1), dtype=np.float32), np.arange(23))
        assert len(DataLoader(ds, 5, rng=rng)) == 5
        assert len(DataLoader(ds, 5, rng=rng, drop_last=True)) == 4

    def test_deterministic_given_rng(self):
        ds = ArrayDataset(np.zeros((10, 1), dtype=np.float32), np.arange(10))
        l1 = DataLoader(ds, 4, rng=np.random.default_rng(0))
        l2 = DataLoader(ds, 4, rng=np.random.default_rng(0))
        for (_, y1), (_, y2) in zip(l1, l2):
            np.testing.assert_array_equal(y1, y2)

    def test_no_shuffle_keeps_order(self, rng):
        ds = ArrayDataset(np.zeros((6, 1), dtype=np.float32), np.arange(6))
        loader = DataLoader(ds, 3, rng=rng, shuffle=False)
        ys = np.concatenate([yb for _, yb in loader])
        np.testing.assert_array_equal(ys, np.arange(6))

    def test_empty_dataset_rejected(self):
        ds = ArrayDataset(np.zeros((0, 1), dtype=np.float32), np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            DataLoader(ds, 4)
