"""Tests for repro.utils: RNG streams, vector ops, timers."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils import (
    RngStream,
    StageTimer,
    Timer,
    flatten_arrays,
    seed_everything,
    spawn_rngs,
    tree_add,
    tree_axpy,
    tree_copy,
    tree_dot,
    tree_scale,
    tree_sq_norm,
    tree_sub,
    unflatten_like,
    zeros_like_flat,
)


class TestRngStream:
    def test_same_path_same_stream(self):
        a = RngStream(7).child("data").random(5)
        b = RngStream(7).child("data").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_independent(self):
        a = RngStream(7).child("data").random(5)
        b = RngStream(7).child("init").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStream(1).child("x").random(5)
        b = RngStream(2).child("x").random(5)
        assert not np.array_equal(a, b)

    def test_indexed_children(self):
        a = RngStream(0).child("client", 3).random(4)
        b = RngStream(0).child("client", 4).random(4)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        """Drawing from one child must not perturb a sibling."""
        root = RngStream(5)
        root.child("a").random(100)
        b1 = root.child("b").random(5)
        b2 = RngStream(5).child("b").random(5)
        np.testing.assert_array_equal(b1, b2)

    def test_child_requires_path(self):
        with pytest.raises(ValueError):
            RngStream(0).child()

    def test_spawn_rngs(self):
        rngs = spawn_rngs(3, ["a", "b"])
        assert set(rngs) == {"a", "b"}
        assert not np.array_equal(rngs["a"].random(4), rngs["b"].random(4))

    def test_seed_everything_returns_root(self):
        root = seed_everything(11)
        assert isinstance(root, RngStream)
        assert root.seed == 11


class TestVectorize:
    def test_flatten_unflatten_roundtrip(self, rng):
        arrays = [rng.standard_normal(s).astype(np.float32) for s in [(3, 4), (7,), (2, 2, 2)]]
        flat = flatten_arrays(arrays)
        assert flat.shape == (3 * 4 + 7 + 8,)
        back = unflatten_like(flat, arrays)
        for a, b in zip(arrays, back):
            np.testing.assert_array_equal(a, b)

    def test_unflatten_views_share_memory(self, rng):
        arrays = [rng.standard_normal((2, 2)).astype(np.float32)]
        flat = flatten_arrays(arrays)
        views = unflatten_like(flat, arrays)
        flat[0] = 42.0
        assert views[0][0, 0] == 42.0

    def test_unflatten_size_mismatch(self):
        with pytest.raises(ValueError):
            unflatten_like(np.zeros(5), [np.zeros((2, 2))])

    def test_flatten_empty(self):
        assert flatten_arrays([]).size == 0

    def test_zeros_like_flat(self, rng):
        arrays = [np.ones((2, 3), dtype=np.float32), np.ones(4, dtype=np.float32)]
        z = zeros_like_flat(arrays)
        assert z.shape == (10,) and (z == 0).all()

    def test_tree_axpy_in_place(self):
        xs = [np.ones(3)]
        ys = [np.ones(3) * 2]
        buf = ys[0]
        tree_axpy(0.5, xs, ys)
        assert ys[0] is buf
        np.testing.assert_allclose(ys[0], 2.5)

    def test_tree_ops(self):
        xs = [np.array([1.0, 2.0]), np.array([[3.0]])]
        ys = [np.array([0.5, 0.5]), np.array([[1.0]])]
        np.testing.assert_allclose(tree_sub(xs, ys)[0], [0.5, 1.5])
        np.testing.assert_allclose(tree_add(xs, ys)[1], [[4.0]])
        assert tree_dot(xs, ys) == pytest.approx(1 * 0.5 + 2 * 0.5 + 3 * 1)
        assert tree_sq_norm(xs) == pytest.approx(1 + 4 + 9)

    def test_tree_copy_independent(self):
        xs = [np.ones(2)]
        ys = tree_copy(xs)
        ys[0][0] = 5
        assert xs[0][0] == 1

    def test_tree_scale(self):
        xs = [np.ones(3)]
        tree_scale(2.0, xs)
        np.testing.assert_allclose(xs[0], 2.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            tree_sub([np.zeros(2)], [])


class TestTimers:
    def test_timer_measures(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_stage_timer_accumulates(self):
        st = StageTimer()
        for _ in range(3):
            with st.stage("work"):
                time.sleep(0.002)
        assert st.counts["work"] == 3
        assert st.totals["work"] >= 0.005
        assert st.mean("work") > 0

    def test_stop_without_start_raises(self):
        with pytest.raises(KeyError):
            StageTimer().stop("nope")
