"""Simulation round loop: determinism, executors, cost tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import FedAvg, FedTrip, build_strategy
from repro.fl import FLConfig, Simulation


def _run(data, strategy, config, **kw):
    sim = Simulation(data, strategy, config, model_name="mlp", **kw)
    hist = sim.run()
    sim.close()
    return sim, hist


class TestDeterminism:
    def test_same_seed_identical_history(self, tiny_data, small_config):
        _, h1 = _run(tiny_data, FedAvg(), small_config)
        _, h2 = _run(tiny_data, FedAvg(), small_config)
        np.testing.assert_array_equal(h1.accuracies(), h2.accuracies())
        np.testing.assert_array_equal(h1.train_losses(), h2.train_losses())

    def test_different_seed_differs(self, tiny_data):
        c1 = FLConfig(rounds=3, n_clients=6, clients_per_round=3, batch_size=20, seed=1)
        c2 = FLConfig(rounds=3, n_clients=6, clients_per_round=3, batch_size=20, seed=2)
        _, h1 = _run(tiny_data, FedAvg(), c1)
        _, h2 = _run(tiny_data, FedAvg(), c2)
        assert not np.array_equal(h1.accuracies(), h2.accuracies())

    def test_serial_vs_threaded_identical(self, tiny_data, small_config):
        _, h1 = _run(tiny_data, FedAvg(), small_config, n_workers=1)
        _, h2 = _run(tiny_data, FedAvg(), small_config, n_workers=3)
        np.testing.assert_allclose(h1.accuracies(), h2.accuracies(), atol=1e-5)

    def test_fedtrip_threaded_matches_serial(self, tiny_data, small_config):
        _, h1 = _run(tiny_data, FedTrip(mu=0.4), small_config, n_workers=1)
        _, h2 = _run(tiny_data, FedTrip(mu=0.4), small_config, n_workers=2)
        np.testing.assert_allclose(h1.accuracies(), h2.accuracies(), atol=1e-5)


class TestRoundLoop:
    def test_history_length(self, tiny_data, small_config):
        _, hist = _run(tiny_data, FedAvg(), small_config)
        assert len(hist) == small_config.rounds

    def test_selected_clients_recorded(self, tiny_data, small_config):
        _, hist = _run(tiny_data, FedAvg(), small_config)
        for rec in hist.records:
            assert len(rec.selected) == small_config.clients_per_round

    def test_eval_every(self, tiny_data):
        cfg = FLConfig(rounds=6, n_clients=6, clients_per_round=3, batch_size=20,
                       seed=0, eval_every=3)
        _, hist = _run(tiny_data, FedAvg(), cfg)
        acc = hist.accuracies()
        assert not np.isnan(acc[0]) and not np.isnan(acc[3]) and not np.isnan(acc[5])
        assert np.isnan(acc[1]) and np.isnan(acc[2])

    def test_client_count_mismatch_rejected(self, tiny_data):
        cfg = FLConfig(rounds=1, n_clients=9, clients_per_round=3)
        with pytest.raises(ValueError):
            Simulation(tiny_data, FedAvg(), cfg, model_name="mlp")

    def test_resume_runs_remaining_rounds(self, tiny_data, small_config):
        sim = Simulation(tiny_data, FedAvg(), small_config, model_name="mlp")
        sim.run_round()
        hist = sim.run()
        assert len(hist) == small_config.rounds
        sim.close()

    def test_global_model_returns_loaded_copy(self, tiny_data, small_config):
        sim, _ = _run(tiny_data, FedAvg(), small_config)
        model = sim.global_model()
        for a, b in zip(model.get_weights(), sim.server.weights):
            np.testing.assert_array_equal(a, b)

    def test_preamble_strategy_rejects_threads(self, tiny_data, small_config):
        with pytest.raises(ValueError):
            Simulation(tiny_data, build_strategy("feddane"), small_config,
                       model_name="mlp", n_workers=2)


class TestCostTracking:
    def test_cumulative_flops_strictly_increasing(self, tiny_data, small_config):
        _, hist = _run(tiny_data, FedAvg(), small_config)
        flops = hist.flops()
        assert (np.diff(flops) > 0).all()

    def test_comm_proportional_to_rounds(self, tiny_data, small_config):
        sim, hist = _run(tiny_data, FedAvg(), small_config)
        per_round = 2 * sim.profile.num_params * 4 * small_config.clients_per_round
        np.testing.assert_allclose(
            hist.comm_bytes(), per_round * np.arange(1, small_config.rounds + 1)
        )

    def test_scaffold_doubles_comm(self, tiny_data, small_config):
        _, h_avg = _run(tiny_data, FedAvg(), small_config)
        _, h_scaf = _run(tiny_data, build_strategy("scaffold"), small_config)
        np.testing.assert_allclose(
            h_scaf.comm_bytes()[-1], 2 * h_avg.comm_bytes()[-1]
        )

    def test_moon_flops_exceed_fedavg(self, tiny_data, small_config):
        _, h_avg = _run(tiny_data, FedAvg(), small_config)
        _, h_moon = _run(tiny_data, build_strategy("moon"), small_config)
        # MOON adds 2 extra forwards out of 3 base passes: ~+2/3.
        assert h_moon.flops()[-1] > 1.4 * h_avg.flops()[-1]

    def test_fedtrip_overhead_is_negligible(self, tiny_data, small_config):
        _, h_avg = _run(tiny_data, FedAvg(), small_config)
        _, h_trip = _run(tiny_data, FedTrip(mu=0.4), small_config)
        assert h_trip.flops()[-1] < 1.1 * h_avg.flops()[-1]


class TestOptimizerSelection:
    def test_strategy_forces_plain_sgd(self, tiny_data, small_config):
        sim = Simulation(tiny_data, build_strategy("slowmo"), small_config, model_name="mlp")
        worker = sim.executor._worker
        assert worker.optimizer.momentum == 0.0
        sim.close()

    def test_default_is_sgdm(self, tiny_data, small_config):
        sim = Simulation(tiny_data, FedAvg(), small_config, model_name="mlp")
        assert sim.executor._worker.optimizer.momentum == pytest.approx(0.9)
        sim.close()
