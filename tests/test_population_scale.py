"""Population-scale federation: streaming aggregation, lazy rosters, arenas.

Four contracts pinned here:

1. **Chunked == dense, bitwise.**  The pinned row fold makes the weighted
   average a function of the row *sequence* only, so every aggregation
   block size — 1, 3, K, K+7, an ambient conftest default — produces the
   same float64 bit pattern, at function level and through the full
   executor x mode experiment grid.
2. **Aggregator invariants, property-based.**  Every registered rule is
   classified for permutation equivariance, weight-scale invariance and
   K=1 behaviour; a completeness check fails the suite the moment a new
   rule is registered without declaring its row in the tables, so new
   aggregators inherit the invariant suite automatically.
3. **Lazy == eager, bitwise.**  A :class:`Population`-backed run (lazy
   directory, per-(client, key) arena slots, optionally mmap-forced)
   yields byte-identical histories *and* per-client strategy state to the
   eager roster, across serial/threaded/process executors.
4. **Resource hygiene.**  The shared :class:`MatrixPool` survives
   back-to-back different-P experiments and is reset on engine close; the
   tier-2 peak-RSS test pins the O(touched)-not-O(population) memory
   ceiling in subprocesses (``ru_maxrss`` is a process-lifetime max, so
   each cell needs a fresh process).
"""

from __future__ import annotations

import pickle
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import ExperimentSpec, build_mode, run_experiment
from repro.data import build_federated_data
from repro.fl.aggregation import (
    aggregation_block,
    get_aggregation_block_size,
    set_default_aggregation_block_size,
    weighted_average_flat,
    weighted_average_trees,
    weighted_average_trees_loop,
)
from repro.fl.params import _default_pool, reset_default_pool
from repro.fl.population import (
    ClientDirectory,
    FlatStateArena,
    Population,
    PopulationSampler,
)
from repro.fl.robust import available_aggregators, build_aggregator

TINY = dict(dataset="tiny", model="mlp", method="fedavg", n_clients=4,
            clients_per_round=2, rounds=3, batch_size=20, lr=0.05)

#: a schedule whose rows are already sorted (FixedSampler sorts each row,
#: so unsorted rows would silently select different cohorts than written)
SCHEDULE = ((0, 2), (1, 3), (1, 3))


def _sig(history):
    """The full byte-level identity signature of a run (mirrors
    ``test_params._records_signature``)."""
    return [
        (r.round_idx, tuple(r.selected), r.test_accuracy, r.test_loss,
         r.mean_train_loss, r.cumulative_flops, r.cumulative_comm_bytes,
         tuple(r.dropped_clients), tuple(r.screened_clients),
         tuple(r.adversary_clients) if r.adversary_clients is not None else None,
         r.round_skipped)
        for r in history.records
    ]


def _random_trees(seed: int, k: int = 11, dtype=np.float32):
    """K random parameter trees (mixed layer shapes, one dtype) + weights."""
    rng = np.random.default_rng(seed)
    shapes = [(3, 4), (7,), (2, 5), (1, 1, 6)]
    trees = [
        [rng.standard_normal(s).astype(dtype) for s in shapes]
        for _ in range(k)
    ]
    weights = rng.integers(1, 40, size=k).astype(np.float64)
    return trees, weights


def _tree_bytes(tree):
    return tuple(a.tobytes() for a in tree)


@pytest.fixture(scope="module")
def tiny4():
    """The 4-shard dataset every TINY spec in this module trains on."""
    return build_federated_data(
        "tiny", n_clients=4, partition="dirichlet", alpha=0.5, seed=0
    )


# ---------------------------------------------------------------------------
# 1a. Function-level: the pinned fold is block-size independent, bitwise.
# ---------------------------------------------------------------------------

class TestPinnedFoldByteIdentity:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_every_block_size_is_byte_identical(self, dtype):
        """Blocks 1, 3, K and K+7 (clamped to dense) all reproduce the dense
        result bit for bit — the streaming property the whole population
        path rests on."""
        k = 11
        trees, weights = _random_trees(0, k=k, dtype=dtype)
        dense = _tree_bytes(weighted_average_trees(trees, weights, block_size=k))
        for block in (1, 3, k, k + 7):
            chunked = weighted_average_trees(trees, weights, block_size=block)
            assert _tree_bytes(chunked) == dense, f"block={block} diverged"

    def test_ambient_context_matches_explicit_argument(self):
        trees, weights = _random_trees(1)
        explicit = _tree_bytes(weighted_average_trees(trees, weights, block_size=2))
        with aggregation_block(2):
            ambient = _tree_bytes(weighted_average_trees(trees, weights))
        assert ambient == explicit

    def test_block_resolution_priority(self):
        """Explicit argument > innermost context > module default; a None
        context is transparent; the previous default is restored."""
        prev = set_default_aggregation_block_size(5)
        try:
            assert get_aggregation_block_size() == 5
            with aggregation_block(2):
                assert get_aggregation_block_size() == 2
                with aggregation_block(None):  # transparent
                    assert get_aggregation_block_size() == 2
                with aggregation_block(7):  # innermost wins
                    assert get_aggregation_block_size() == 7
                assert get_aggregation_block_size() == 2
            assert get_aggregation_block_size() == 5
        finally:
            set_default_aggregation_block_size(prev)
        assert get_aggregation_block_size() == prev

    def test_module_default_streams_byte_identically(self):
        trees, weights = _random_trees(2)
        dense = _tree_bytes(weighted_average_trees(trees, weights))
        prev = set_default_aggregation_block_size(3)
        try:
            chunked = _tree_bytes(weighted_average_trees(trees, weights))
        finally:
            set_default_aggregation_block_size(prev)
        assert chunked == dense

    def test_flat_entrypoint_matches_tree_entrypoint(self):
        """Both public entry points funnel through the same fold, so the
        stacked-matrix API and the tree API agree bitwise on float64."""
        trees, weights = _random_trees(3, dtype=np.float64)
        mat = np.stack([np.concatenate([a.ravel() for a in t]) for t in trees])
        flat = weighted_average_flat(mat, weights)
        tree = weighted_average_trees(trees, weights)
        assert np.concatenate([a.ravel() for a in tree]).tobytes() == flat.tobytes()

    def test_fold_matches_loop_reference(self):
        trees, weights = _random_trees(4)
        fold = weighted_average_trees(trees, weights, block_size=3)
        loop = weighted_average_trees_loop(trees, weights)
        for a, b in zip(fold, loop):
            np.testing.assert_allclose(a, b, rtol=1e-6, atol=1e-7)

    def test_k1_is_exact(self):
        """A single-tree 'average' returns that tree's values unchanged."""
        trees, _ = _random_trees(5, k=1)
        out = weighted_average_trees(trees, [17.0], block_size=1)
        assert _tree_bytes(out) == _tree_bytes(trees[0])

    def test_invalid_block_sizes_are_rejected(self):
        trees, weights = _random_trees(6, k=3)
        for bad in (0, -1):
            with pytest.raises(ValueError, match="block size"):
                weighted_average_trees(trees, weights, block_size=bad)
            with pytest.raises(ValueError, match="block size"):
                with aggregation_block(bad):
                    pass  # pragma: no cover - raise happens on entry
        with pytest.raises(ValueError, match="block size"):
            set_default_aggregation_block_size(0)


# ---------------------------------------------------------------------------
# 1b. Experiment-level: chunked == dense through the executor x mode grid.
# ---------------------------------------------------------------------------

class TestGridByteIdentity:
    def test_chunked_equals_dense_across_executor_mode_grid(self):
        """Every (executor x mode x block) cell reproduces its mode family's
        dense reference byte for byte.  Sync and semisync (full buffer, no
        deadline) share one reference; async — a different algorithm by
        construction — has its own, and must itself be block-invariant
        (its mean path already folds sequentially)."""
        references = {
            "barrier": _sig(run_experiment(ExperimentSpec(**TINY))),
            "async": _sig(run_experiment(
                ExperimentSpec(**{**TINY, "mode": "async"}))),
        }
        for block in (1, 3):
            for executor in ("serial", "process"):
                for mode in ("sync", "semisync", "async"):
                    spec = ExperimentSpec(**{
                        **TINY, "executor": executor, "mode": mode,
                        "agg_block_size": block,
                        **({"device_profile": "iot"} if mode == "semisync" else {}),
                        **({"n_workers": 2} if executor != "serial" else {}),
                    })
                    key = "async" if mode == "async" else "barrier"
                    assert _sig(run_experiment(spec)) == references[key], (
                        f"block={block} {executor}/{mode} diverged from dense")

    def test_population_run_is_block_invariant_across_executors(self, tiny4):
        """A population-backed cohort streamed out of a 10k-id space is
        byte-identical across serial/threaded/process and block sizes."""
        base = {**TINY, "population_size": 10_000}
        reference = None
        for executor in ("serial", "threaded", "process"):
            for block in (None, 3):
                spec = ExperimentSpec(**{
                    **base, "executor": executor,
                    **({} if block is None else {"agg_block_size": block}),
                    **({"n_workers": 2} if executor != "serial" else {}),
                })
                sig = _sig(run_experiment(spec, data=tiny4))
                if reference is None:
                    reference = sig
                else:
                    assert sig == reference, (
                        f"population cell {executor}/block={block} diverged")
        # the sampler really draws from the virtual space, not the shards
        selected = {c for rec in reference for c in rec[1]}
        assert any(c >= TINY["n_clients"] for c in selected), (
            "expected virtual ids beyond the shard count in a 10k population")


# ---------------------------------------------------------------------------
# 2. Property-based aggregator invariants (every registered rule).
# ---------------------------------------------------------------------------

#: rules whose output is bit-identical under row permutation (pure order
#: statistics / argmin selection); all others re-fold in a different row
#: order and are allclose-equivariant instead
PERM_EXACT = {"coordinate_median", "krum"}

#: K=1 behaviour of each rule.  *Every* registered aggregator must appear in
#: exactly one bucket — test_every_aggregator_is_classified enforces it, so
#: registering a new rule without extending these tables fails the suite.
K1_EXACT = {"mean", "coordinate_median", "trimmed_mean"}
K1_CLOSE = {"norm_clip"}  # rescales by tau/||d|| == 1, not bitwise stable
K1_RAISES = {"krum", "multi_krum", "norm_screen"}  # need K > f + margin


def _reduce(name, mat, weights, global_flat):
    """One rule application on defensive copies (reduce may scribble on
    ``mat``, it is pool scratch in production)."""
    out, kept = build_aggregator(name).reduce(
        mat.copy(), weights.copy(), global_flat.copy()
    )
    return out, kept


def _panel(seed, k=8):
    rng = np.random.default_rng(seed)
    p = int(rng.integers(5, 48))
    mat = rng.standard_normal((k, p))
    weights = rng.integers(1, 60, size=k).astype(np.float64)
    global_flat = rng.standard_normal(p)
    return mat, weights, global_flat


class TestAggregatorInvariants:
    @pytest.mark.parametrize("name", available_aggregators())
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_permutation_equivariance(self, name, seed):
        """Shuffling the cohort rows (and their weights) must not change the
        aggregate — no rule may depend on arrival order."""
        mat, weights, global_flat = _panel(seed)
        perm = np.random.default_rng(seed + 1).permutation(mat.shape[0])
        base, _ = _reduce(name, mat, weights, global_flat)
        permuted, _ = _reduce(name, mat[perm], weights[perm], global_flat)
        if name in PERM_EXACT:
            assert np.array_equal(base, permuted)
        else:
            np.testing.assert_allclose(permuted, base, rtol=1e-9, atol=1e-11)

    @pytest.mark.parametrize("name", available_aggregators())
    @given(seed=st.integers(0, 2**31 - 1),
           scale=st.floats(min_value=1e-3, max_value=1e3,
                           allow_nan=False, allow_infinity=False))
    @settings(max_examples=25, deadline=None)
    def test_weight_scale_invariance(self, name, seed, scale):
        """Weights are relative sample counts: multiplying all of them by one
        positive constant must leave every rule's output (all)close."""
        mat, weights, global_flat = _panel(seed)
        base, _ = _reduce(name, mat, weights, global_flat)
        scaled, _ = _reduce(name, mat, weights * scale, global_flat)
        np.testing.assert_allclose(scaled, base, rtol=1e-9, atol=1e-11)

    @pytest.mark.parametrize("name", available_aggregators())
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_k1_behaviour(self, name, seed):
        """A one-client cohort either returns that client's vector (exactly,
        or up to a unit rescale for norm_clip) or refuses with a clear
        error — never a silent wrong answer."""
        mat, weights, global_flat = _panel(seed, k=1)
        if name in K1_RAISES:
            with pytest.raises(ValueError):
                _reduce(name, mat, weights, global_flat)
            return
        out, kept = _reduce(name, mat, weights, global_flat)
        assert kept == [0]
        if name in K1_EXACT:
            assert np.array_equal(out, mat[0])
        else:
            # rtol leaves headroom for the rescale's multiply/divide round-off
            # (hypothesis has found panels a shade past 1e-12).
            np.testing.assert_allclose(out, mat[0], rtol=1e-10, atol=0)

    def test_every_aggregator_is_classified(self):
        """Completeness gate: a newly registered rule inherits the invariant
        suite automatically (the parametrize above reads the registry), but
        its K=1 bucket is a semantic choice someone must make — this test
        turns 'forgot to classify it' into a named failure."""
        buckets = (K1_EXACT, K1_CLOSE, K1_RAISES)
        classified = set().union(*buckets)
        missing = set(available_aggregators()) - classified
        assert not missing, (
            f"aggregators {sorted(missing)} are registered but not classified "
            "in tests/test_population_scale.py (K1_EXACT / K1_CLOSE / "
            "K1_RAISES); add each to exactly one bucket")
        for a, b in ((0, 1), (0, 2), (1, 2)):
            overlap = buckets[a] & buckets[b]
            assert not overlap, f"aggregators {sorted(overlap)} in two buckets"
        assert PERM_EXACT <= set(available_aggregators())


# ---------------------------------------------------------------------------
# 3a. Population / sampler units.
# ---------------------------------------------------------------------------

class TestPopulationModel:
    def test_shard_mapping_and_validation(self):
        pop = Population(10**6, n_shards=64)
        assert pop.size == 10**6 and pop.n_shards == 64
        assert pop.shard_of(0) == 0
        assert pop.shard_of(64) == 0
        assert pop.shard_of(999_999) == 999_999 % 64
        with pytest.raises(ValueError):
            pop.shard_of(10**6)
        with pytest.raises(ValueError):
            pop.shard_of(-1)
        with pytest.raises(ValueError):
            Population(0, n_shards=1)
        with pytest.raises(ValueError):
            Population(4, n_shards=5)
        assert pop.describe() == {"size": 10**6, "n_shards": 64}

    def test_sampler_cohorts_are_distinct_in_range_and_deterministic(self):
        pop = Population(10**6, n_shards=4)
        sampler = PopulationSampler(pop, clients_per_round=64, seed=7)
        again = PopulationSampler(pop, clients_per_round=64, seed=7)
        seen = set()
        for r in range(5):
            cohort = sampler.select(r)
            assert cohort == again.select(r), "same seed+round must agree"
            assert len(cohort) == 64
            assert len(set(cohort)) == 64, "cohort ids must be distinct"
            assert all(0 <= c < pop.size for c in cohort)
            seen.update(cohort)
        assert len(seen) > 64, "rounds should draw different cohorts"
        assert sampler.participation_rate == 64 / 10**6

    def test_sampler_dense_fallback_matches_contract(self):
        """K*2 >= N takes the choice() path; the distinct/range/determinism
        contract is identical there."""
        pop = Population(10, n_shards=2)
        sampler = PopulationSampler(pop, clients_per_round=7, seed=3)
        cohort = sampler.select(0)
        assert len(cohort) == 7 and len(set(cohort)) == 7
        assert cohort == sorted(cohort)
        assert cohort == PopulationSampler(pop, 7, seed=3).select(0)
        with pytest.raises(ValueError):
            PopulationSampler(pop, clients_per_round=11)


# ---------------------------------------------------------------------------
# 3b. FlatStateArena units.
# ---------------------------------------------------------------------------

class TestFlatStateArena:
    def test_small_and_non_flat_values_pass_through(self):
        arena = FlatStateArena()
        small = np.ones(8, dtype=np.float32)
        square = np.ones((32, 32), dtype=np.float32)
        assert arena.intern(small) is small
        assert arena.intern(square) is square
        assert arena.intern(3.5) == 3.5
        assert arena.stats()["n_slots"] == 0

    def test_heap_interning_below_threshold(self):
        arena = FlatStateArena(threshold_bytes=1 << 20)
        flat = np.arange(512, dtype=np.float32)
        slot = arena.intern(flat)
        assert slot.tobytes() == flat.tobytes()
        stats = arena.stats()
        assert stats["heap_bytes"] == flat.nbytes
        assert stats["mapped_bytes"] == 0
        assert stats["n_slots"] == 1

    def test_threshold_zero_forces_mmap_with_byte_fidelity(self):
        arena = FlatStateArena(threshold_bytes=0)
        try:
            flat = np.random.default_rng(0).standard_normal(1024)
            slot = arena.intern(flat)
            assert slot.tobytes() == flat.tobytes()
            assert slot.dtype == flat.dtype and slot.shape == flat.shape
            # plain ndarray view, not an np.memmap instance (pickles by value)
            assert type(slot) is np.ndarray
            # 64-byte aligned and writable in place
            assert slot.ctypes.data % 64 == 0
            slot[0] = 42.0
            assert slot[0] == 42.0
            stats = arena.stats()
            assert stats["mapped_bytes"] > 0 and stats["heap_bytes"] == 0
            assert stats["n_slots"] == 1 and stats["n_chunks"] == 1
        finally:
            arena.close()

    def test_mapped_slot_pickles_by_value(self):
        arena = FlatStateArena(threshold_bytes=0)
        try:
            flat = np.arange(300, dtype=np.float64)
            slot = arena.intern(flat)
            clone = pickle.loads(pickle.dumps(slot))
            assert type(clone) is np.ndarray
            assert clone.tobytes() == flat.tobytes()
        finally:
            arena.close()

    def test_chunks_grow_and_slots_stay_aligned(self):
        arena = FlatStateArena(threshold_bytes=0, chunk_bytes=4096)
        try:
            slots = [arena.intern(np.full(256, i, dtype=np.float64))
                     for i in range(8)]  # 2 KiB each > one 4 KiB chunk total
            assert arena.stats()["n_chunks"] > 1
            for i, slot in enumerate(slots):
                assert slot.ctypes.data % 64 == 0
                assert (slot == i).all(), "slots must not alias each other"
        finally:
            arena.close()

    def test_close_resets_accounting(self):
        arena = FlatStateArena(threshold_bytes=0)
        arena.intern(np.ones(512))
        arena.close()
        assert arena.stats() == {
            "heap_bytes": 0, "mapped_bytes": 0, "n_slots": 0, "n_chunks": 0,
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            FlatStateArena(threshold_bytes=-1)
        with pytest.raises(ValueError):
            FlatStateArena(chunk_bytes=0)


# ---------------------------------------------------------------------------
# 3c. ClientDirectory units.
# ---------------------------------------------------------------------------

class TestClientDirectory:
    def test_materialization_is_lazy_and_shards_are_shared(self, tiny4):
        pop = Population(10**6, n_shards=4)
        directory = ClientDirectory(pop, tiny4, seed=0)
        try:
            assert len(directory) == 10**6
            assert directory.materialized == 0
            a = directory[123_456]
            assert directory.materialized == 1
            assert directory[123_456] is a, "repeat index returns the cache"
            # 123_456 % 4 == 0, as does 8: one shard object for both
            b = directory[8]
            assert b.dataset is a.dataset
            assert directory.materialized == 2
        finally:
            directory.close()

    def test_shard_count_mismatch_is_rejected(self, tiny4):
        with pytest.raises(ValueError, match="shards"):
            ClientDirectory(Population(100, n_shards=5), tiny4)

    def test_state_factory_interns_through_the_arena(self, tiny4):
        pop = Population(100, n_shards=4)
        directory = ClientDirectory(
            pop, tiny4, seed=0,
            state_factory=lambda cid: {"c_k": np.zeros(512, dtype=np.float32),
                                       "rounds": 0},
            arena=FlatStateArena(threshold_bytes=0),
        )
        try:
            client = directory[11]
            assert (client.state["c_k"] == 0).all()
            assert client.state["rounds"] == 0
            assert directory.arena.stats() == pytest.approx(
                {"heap_bytes": 0, "mapped_bytes": directory.arena.stats()["mapped_bytes"],
                 "n_slots": 1, "n_chunks": 1})
            assert directory.arena.stats()["mapped_bytes"] > 0
        finally:
            directory.close()

    def test_adopt_state_reuses_the_slot_in_place(self, tiny4):
        """Round N+1 values land in round N's buffer: the array object is
        stable across adoptions (no per-round arena growth, SCAFFOLD's
        rebinding cannot leak slots) while the bytes track the new state."""
        pop = Population(100, n_shards=4)
        directory = ClientDirectory(
            pop, tiny4, seed=0,
            state_factory=lambda cid: {"c_k": np.zeros(512, dtype=np.float32)},
        )
        try:
            slot = directory[7].state["c_k"]
            fresh = np.full(512, 2.5, dtype=np.float32)  # value copy, e.g.
            directory.adopt_state(7, {"c_k": fresh, "rounds": 3})  # from a pool
            assert directory[7].state["c_k"] is slot
            assert (slot == 2.5).all()
            assert directory[7].state["rounds"] == 3
            before = directory.arena.stats()["n_slots"]
            directory.adopt_state(7, {"c_k": np.full(512, 9.0, dtype=np.float32)})
            assert directory.arena.stats()["n_slots"] == before
            assert (slot == 9.0).all()
        finally:
            directory.close()

    def test_adoption_handles_shape_changes_and_non_arrays(self, tiny4):
        pop = Population(100, n_shards=4)
        directory = ClientDirectory(
            pop, tiny4, seed=0,
            state_factory=lambda cid: {"c_k": np.zeros(512, dtype=np.float32)},
        )
        try:
            directory[3]
            wider = np.ones(768, dtype=np.float32)
            directory.adopt_state(3, {"c_k": wider, "note": "resized"})
            assert directory[3].state["c_k"].tobytes() == wider.tobytes()
            assert directory[3].state["note"] == "resized"
        finally:
            directory.close()

    def test_rng_is_keyed_by_client_id_not_materialization_order(self, tiny4):
        """Touching clients in different orders yields the same per-client
        round RNG stream — the property that makes lazy == eager."""
        pop = Population(1000, n_shards=4)
        forward = ClientDirectory(pop, tiny4, seed=5)
        backward = ClientDirectory(pop, tiny4, seed=5)
        try:
            ids = [17, 401, 3]
            for cid in ids:
                forward[cid]
            for cid in reversed(ids):
                backward[cid]
            for cid in ids:
                a = forward[cid].round_rng(0).integers(0, 2**31, size=4)
                b = backward[cid].round_rng(0).integers(0, 2**31, size=4)
                assert np.array_equal(a, b)
        finally:
            forward.close()
            backward.close()


# ---------------------------------------------------------------------------
# 3d. Lazy roster == eager roster, end to end (state included).
# ---------------------------------------------------------------------------

def _stateful_spec(method, **extra):
    """A fixed-schedule spec so eager and population runs select identical
    cohorts (PopulationSampler's stream differs from UniformSampler's by
    design, so uniform sampling cannot be compared across roster kinds)."""
    return ExperimentSpec(**{
        **TINY, "method": method,
        "sampler": "fixed", "sampler_kwargs": {"schedule": SCHEDULE},
        **extra,
    })


class TestLazyEagerEquivalence:
    @pytest.mark.parametrize("method", ["scaffold", "feddyn"])
    def test_histories_and_client_state_are_byte_identical(self, method, tiny4):
        """With an identity shard map (population == shard count) and a fixed
        schedule, the lazy directory must reproduce the eager roster's
        history *and* every touched client's strategy state, bitwise."""
        eager = build_mode("sync", spec=_stateful_spec(method),
                           data=tiny4, callbacks=())
        lazy = build_mode(
            "sync",
            spec=_stateful_spec(method, population_size=TINY["n_clients"]),
            data=tiny4, callbacks=())
        try:
            assert _sig(eager.run()) == _sig(lazy.run())
            assert isinstance(lazy.clients, ClientDirectory)
            touched = sorted({c for row in SCHEDULE for c in row})
            assert lazy.clients.materialized == len(touched)
            for cid in touched:
                es, ls = eager.clients[cid].state, lazy.clients[cid].state
                assert set(es) == set(ls), f"client {cid} state keys differ"
                for key, val in es.items():
                    if isinstance(val, np.ndarray):
                        assert val.tobytes() == ls[key].tobytes(), (
                            f"client {cid} state[{key!r}] diverged")
                    else:
                        assert val == ls[key]
        finally:
            eager.close()
            lazy.close()

    @pytest.mark.parametrize("executor", ["threaded", "process"])
    def test_population_state_survives_worker_pools(self, executor, tiny4):
        """Lazy state round-trips through worker pools (value copies for the
        process pool) byte-identically to the serial eager reference."""
        reference = _sig(run_experiment(_stateful_spec("feddyn"), data=tiny4))
        spec = _stateful_spec("feddyn", population_size=TINY["n_clients"],
                              executor=executor, n_workers=2)
        assert _sig(run_experiment(spec, data=tiny4)) == reference

    def test_forced_mmap_state_is_byte_identical(self, tiny4):
        """state_mmap_mb=0 sends every interned flat to the memmap arena;
        training must not notice."""
        reference = _sig(run_experiment(_stateful_spec("scaffold"), data=tiny4))
        lazy = build_mode(
            "sync",
            spec=_stateful_spec("scaffold",
                                population_size=TINY["n_clients"],
                                state_mmap_mb=0),
            data=tiny4, callbacks=())
        try:
            assert _sig(lazy.run()) == reference
            stats = lazy.clients.arena.stats()
            assert stats["mapped_bytes"] > 0, (
                "scaffold c_k (P=6904 floats) should have hit the mmap arena")
            assert stats["heap_bytes"] == 0
        finally:
            lazy.close()


# ---------------------------------------------------------------------------
# 4a. MatrixPool hygiene across experiments.
# ---------------------------------------------------------------------------

class TestMatrixPoolHygiene:
    def test_back_to_back_different_p_experiments_are_unperturbed(self, tiny4):
        """The thread-local pool caches (K, P) scratch; interleaving an
        experiment with a different P must not change a rerun's bytes (and
        the engine resets the pool on close, so nothing is retained)."""
        small = ExperimentSpec(**TINY)
        wide = ExperimentSpec(**{**TINY, "model": "cnn", "rounds": 1})
        first = _sig(run_experiment(small, data=tiny4))
        run_experiment(wide, data=tiny4)  # different P through the same pool
        assert _sig(run_experiment(small, data=tiny4)) == first

    def test_engine_close_resets_the_default_pool(self, tiny4):
        pool = _default_pool()
        engine = build_mode("sync", spec=ExperimentSpec(**TINY),
                            data=tiny4, callbacks=())
        engine.run()
        # an all-flat fedavg cohort folds without staging, so park scratch
        # explicitly — what matters is that close() clears whatever is there
        pool.take(2, 64)
        assert pool._pool
        engine.close()
        assert not pool._pool, (
            "Engine.close() must clear the pool so scratch from one "
            "experiment cannot outlive it")

    def test_reset_default_pool_is_idempotent_and_safe_when_empty(self):
        pool = _default_pool()
        pool.take(2, 64)
        reset_default_pool()
        assert not pool._pool
        reset_default_pool()  # empty pool: a no-op, not an error
        assert not pool._pool


# ---------------------------------------------------------------------------
# 4b. Spec/engine validation for the new knobs.
# ---------------------------------------------------------------------------

class TestSpecValidation:
    def test_population_field_constraints(self):
        with pytest.raises(ValueError, match="population"):
            ExperimentSpec(**{**TINY, "population_size": 2})  # < n_clients
        with pytest.raises(ValueError, match="population"):
            ExperimentSpec(**{**TINY, "population_size": 100, "mode": "async"})
        with pytest.raises(ValueError, match="population"):
            ExperimentSpec(**{**TINY, "population_size": 100,
                              "adversary": "sign_flip",
                              "adversary_fraction": 0.25})
        with pytest.raises(ValueError, match="population"):
            ExperimentSpec(**{**TINY, "population_size": 100,
                              "device_profile": "iot"})

    def test_state_mmap_requires_a_population(self):
        with pytest.raises(ValueError, match="state_mmap_mb"):
            ExperimentSpec(**{**TINY, "state_mmap_mb": 64})
        with pytest.raises(ValueError, match="state_mmap_mb"):
            ExperimentSpec(**{**TINY, "population_size": 100,
                              "state_mmap_mb": -1})

    def test_agg_block_size_must_be_positive(self):
        with pytest.raises(ValueError, match="agg_block_size"):
            ExperimentSpec(**{**TINY, "agg_block_size": 0})

    def test_explicit_block_with_full_matrix_rule_is_rejected_at_build(self, tiny4):
        """The spec-validation philosophy: a knob that would silently do
        nothing is an error, decided at build time, not mid-training."""
        spec = ExperimentSpec(**{**TINY, "aggregator": "trimmed_mean",
                                 "agg_block_size": 2})
        with pytest.raises(ValueError, match="full stacked"):
            build_mode("sync", spec=spec, data=tiny4, callbacks=())

    def test_explicit_block_with_streaming_rule_is_accepted(self, tiny4):
        spec = ExperimentSpec(**{**TINY, "aggregator": "mean",
                                 "agg_block_size": 2})
        dense = ExperimentSpec(**{**TINY, "aggregator": "mean"})
        assert _sig(run_experiment(spec, data=tiny4)) == _sig(
            run_experiment(dense, data=tiny4))

    def test_requires_full_matrix_flags(self):
        assert build_aggregator("mean").requires_full_matrix is False
        for name in ("coordinate_median", "trimmed_mean", "krum",
                     "multi_krum", "norm_clip", "norm_screen"):
            assert build_aggregator(name).requires_full_matrix is True, name

    def test_new_fields_round_trip_through_dict(self):
        spec = ExperimentSpec(**{**TINY, "population_size": 10_000,
                                 "agg_block_size": 3, "state_mmap_mb": 0})
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.population_size == 10_000
        assert clone.agg_block_size == 3
        assert clone.state_mmap_mb == 0


# ---------------------------------------------------------------------------
# 5. Tier-2: the memory ceiling is O(touched), not O(population).
# ---------------------------------------------------------------------------

_RSS_SCRIPT = """\
import resource, sys
from repro.api import ExperimentSpec, run_experiment
spec = ExperimentSpec(dataset="tiny", model="mlp", method="scaffold",
                      n_clients=16, clients_per_round=16, rounds=2,
                      batch_size=20, lr=0.05, seed=0,
                      population_size=int(sys.argv[1]))
run_experiment(spec)
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def _peak_rss_kb(population: int) -> int:
    """Peak RSS of one population run, in its own process — ``ru_maxrss``
    is a process-lifetime high-water mark (KiB on Linux), so cells sharing
    a process would see each other's peaks."""
    out = subprocess.run(
        [sys.executable, "-c", _RSS_SCRIPT, str(population)],
        capture_output=True, text=True, check=True,
    )
    return int(out.stdout.strip().splitlines()[-1])


@pytest.mark.tier2
class TestPopulationMemoryCeiling:
    def test_peak_rss_is_flat_in_population_size(self):
        """10^3 -> 10^5 ids with a fixed cohort: peak RSS must stay under a
        pinned ceiling and essentially flat (an eager roster would grow by
        ~P x population x 4 bytes ~ 2.6 GiB at 10^5).  The ceiling has ~2x
        headroom over the ~70 MiB measured at introduction, so it trips on
        an O(population) regression, not on interpreter noise."""
        small = _peak_rss_kb(10**3)
        large = _peak_rss_kb(10**5)
        ceiling_kb = 160_000
        assert large < ceiling_kb, (
            f"peak RSS {large} KiB at population 10^5 exceeds the "
            f"{ceiling_kb} KiB ceiling — client materialization or state "
            "storage has become O(population)")
        assert large <= small * 1.25, (
            f"peak RSS grew from {small} KiB (10^3) to {large} KiB (10^5); "
            "memory must not scale with the virtual population")
