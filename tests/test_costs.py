"""Cost accounting: Table VIII formulas and cross-checks vs. measured FLOPs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.costs import (
    TABLE8_FORMULAS,
    WorkloadShape,
    attach_overhead_flops,
    comm_overhead_units,
    round_training_flops,
    table8_row,
)
from repro.models import build_cnn, build_mlp, profile_model


@pytest.fixture
def mlp_profile(rng):
    return profile_model(build_mlp((1, 28, 28), 10, rng=rng))


@pytest.fixture
def shape():
    return WorkloadShape(n_samples=600, batch_size=50, local_epochs=1)


class TestWorkloadShape:
    def test_iterations(self):
        assert WorkloadShape(600, 50).iterations == 12
        assert WorkloadShape(601, 50).iterations == 13
        assert WorkloadShape(600, 50, local_epochs=5).iterations == 60

    def test_samples_processed(self):
        assert WorkloadShape(600, 50, local_epochs=2).samples_processed == 1200


class TestTable8:
    def test_fedtrip_equals_feddyn(self, mlp_profile, shape):
        """Table VIII: both cost 4K|w|."""
        assert attach_overhead_flops("fedtrip", mlp_profile, shape) == attach_overhead_flops(
            "feddyn", mlp_profile, shape
        )

    def test_fedprox_half_of_fedtrip(self, mlp_profile, shape):
        assert attach_overhead_flops("fedprox", mlp_profile, shape) * 2 == attach_overhead_flops(
            "fedtrip", mlp_profile, shape
        )

    def test_fedavg_zero(self, mlp_profile, shape):
        assert attach_overhead_flops("fedavg", mlp_profile, shape) == 0.0

    def test_moon_dwarfs_fedtrip(self, mlp_profile, shape):
        """The paper: MOON costs 50x FedTrip per iteration on MLP."""
        moon = attach_overhead_flops("moon", mlp_profile, shape)
        trip = attach_overhead_flops("fedtrip", mlp_profile, shape)
        assert moon / trip > 10.0

    def test_moon_ratio_matches_paper_formula(self, mlp_profile, shape):
        """Per-iteration ratio = M(1+p)FP / 4|w| (paper Appendix A)."""
        moon_it = shape.batch_size * 2 * mlp_profile.forward_flops
        trip_it = 4 * mlp_profile.num_params
        got = attach_overhead_flops("moon", mlp_profile, shape) / attach_overhead_flops(
            "fedtrip", mlp_profile, shape
        )
        assert got == pytest.approx(moon_it / trip_it)

    def test_scaffold_includes_full_grad(self, mlp_profile, shape):
        scaf = attach_overhead_flops("scaffold", mlp_profile, shape)
        expected = (
            2 * (shape.iterations + 1) * mlp_profile.num_params
            + shape.n_samples * 3 * mlp_profile.forward_flops
        )
        assert scaf == pytest.approx(expected)

    def test_comm_units(self):
        assert comm_overhead_units("scaffold") == 2.0
        assert comm_overhead_units("mimelite") == 2.0
        assert comm_overhead_units("feddane") == 2.0
        for m in ("fedavg", "fedprox", "fedtrip", "moon", "feddyn", "slowmo"):
            assert comm_overhead_units(m) == 0.0

    def test_unknown_method(self, mlp_profile, shape):
        with pytest.raises(KeyError):
            attach_overhead_flops("fednova", mlp_profile, shape)
        with pytest.raises(KeyError):
            comm_overhead_units("fednova")

    def test_formula_table_complete(self):
        for m in ("fedtrip", "fedprox", "feddyn", "moon", "scaffold", "mimelite", "fedavg"):
            assert m in TABLE8_FORMULAS

    def test_table8_row_structure(self, mlp_profile, shape):
        row = table8_row("fedtrip", mlp_profile, shape)
        assert row["computation_formula"] == "4K|w|"
        assert row["communication_extra_units"] == 0.0


class TestRoundTrainingFlops:
    def test_base_plus_overhead(self, mlp_profile, shape):
        base = shape.samples_processed * 3 * mlp_profile.forward_flops
        got = round_training_flops("fedprox", mlp_profile, shape)
        assert got == pytest.approx(base + 2 * shape.iterations * mlp_profile.num_params)

    def test_ordering_matches_table5(self, rng, shape):
        """Table V per-round ordering: MOON > SCAFFOLD-style > FedTrip > FedAvg."""
        prof = profile_model(build_cnn((1, 28, 28), 10, rng=rng))
        costs = {
            m: round_training_flops(m, prof, shape)
            for m in ("fedavg", "fedtrip", "fedprox", "moon", "feddyn")
        }
        assert costs["moon"] > costs["fedtrip"] > costs["fedprox"] > costs["fedavg"]
        assert costs["feddyn"] == costs["fedtrip"]


class TestMeasuredVsAnalytic:
    """The simulation's measured extra FLOPs must match the analytic model."""

    @pytest.mark.parametrize("method", ["fedprox", "fedtrip", "moon", "feddyn", "fedgkd"])
    def test_simulated_extra_flops_match_formula(self, tiny_data, method):
        from repro.algorithms import build_strategy
        from repro.fl import FLConfig, Simulation

        cfg = FLConfig(rounds=2, n_clients=6, clients_per_round=3, batch_size=20, seed=0)
        strat = build_strategy(method)
        sim = Simulation(tiny_data, strat, cfg, model_name="mlp")
        hist = sim.run()

        avg = Simulation(tiny_data, build_strategy("fedavg"), cfg, model_name="mlp")
        h_avg = avg.run()

        measured_extra = hist.flops()[-1] - h_avg.flops()[-1]
        # Analytic: sum over participating clients of per-iteration overhead.
        expected = 0.0
        for rec in hist.records:
            for cid in rec.selected:
                n_k = sim.clients[cid].num_samples
                ws = WorkloadShape(n_k, cfg.batch_size, cfg.local_epochs)
                if method in ("moon", "fedgkd"):
                    # Extra forwards are per *sample actually processed*:
                    # sum over batches of batch_size_actual * (1+p) * FP.
                    mult = 2 if method == "moon" else 1
                    expected += mult * n_k * sim.profile.forward_flops
                elif method == "fedtrip":
                    # Round 0 has no history -> 2|w|; later rounds 4|w|.
                    per_it = 2.0 if rec.round_idx == 0 else 4.0
                    expected += per_it * ws.iterations * sim.profile.num_params
                else:
                    expected += attach_overhead_flops(method, sim.profile, ws)
        assert measured_extra == pytest.approx(expected, rel=1e-6)
        sim.close()
        avg.close()
