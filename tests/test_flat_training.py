"""Plane-backed client training: materialization invariants, numerical
gradients through plane-backed models, per-optimizer and per-strategy
tree-vs-flat byte equivalence, flat clipping, and the determinism grid on
the clipped (re-pinned) reduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import build_strategy
from repro.api import ExperimentSpec, run_experiment
from repro.data.dataset import ArrayDataset
from repro.fl.client import Client
from repro.fl.executor import (
    ClientTaskSpec,
    TaskRuntime,
    WorkerContext,
    execute_task,
    make_optimizer,
)
from repro.fl.params import GradPlane, ParamPlane, materialize_parameters
from repro.fl.types import FLConfig
from repro.models import build_model
from repro.nn import Parameter, clip_grad_norm, clip_grad_norm_flat
from repro.nn.losses import CrossEntropyLoss
from repro.optim import SGD, Adam
from repro.utils.rng import RngStream

from tests.conftest import check_layer_gradients


def _mlp(seed=0, input_dim=32):
    return build_model("mlp", (input_dim,), 10, rng=RngStream(seed).child("m").generator)


# ---------------------------------------------------------------------------
# materialization invariants
# ---------------------------------------------------------------------------

class TestMaterializeFlat:
    def test_bytes_order_and_shapes_preserved(self):
        model = _mlp(3)
        before = model.get_weights()
        names = [n for n, _ in model.named_parameters()]
        model.materialize_flat()
        assert [n for n, _ in model.named_parameters()] == names
        for w, p in zip(before, model.parameters()):
            np.testing.assert_array_equal(w, p.data)
            assert p.data.dtype == np.float32

    def test_params_are_views_into_the_planes(self):
        model = _mlp(4).materialize_flat()
        w_flat, g_flat = model.flat_state()
        assert w_flat.size == g_flat.size == model.num_parameters()
        for p in model.parameters():
            assert np.shares_memory(p.data, w_flat)
            assert np.shares_memory(p.grad, g_flat)
        # a write through the flat vector is visible through the parameters
        w_flat[:] = 2.5
        assert all((p.data == 2.5).all() for p in model.parameters())

    def test_idempotent(self):
        model = _mlp(5).materialize_flat()
        w_flat = model.flat_weights
        model.materialize_flat()
        assert model.flat_weights is w_flat

    def test_zero_grad_is_one_write(self):
        model = _mlp(6).materialize_flat()
        model.flat_grads[...] = 3.0
        model.zero_grad()
        assert (model.flat_grads == 0.0).all()
        assert all((p.grad == 0.0).all() for p in model.parameters())

    def test_get_weights_flat_is_detached_single_copy(self):
        model = _mlp(7).materialize_flat()
        flat, shapes = model.get_weights_flat()
        assert not np.shares_memory(flat, model.flat_weights)
        assert shapes == [p.data.shape for p in model.parameters()]
        np.testing.assert_array_equal(
            flat, np.concatenate([p.data.ravel() for p in model.parameters()]))

    def test_set_weights_flat_adopts_in_one_copy(self):
        model = _mlp(8).materialize_flat()
        target = np.arange(model.num_parameters(), dtype=np.float32)
        model.set_weights_flat(target)
        np.testing.assert_array_equal(model.flat_weights, target)
        with pytest.raises(ValueError, match="elements"):
            model.set_weights_flat(target[:-1])

    def test_state_dict_round_trip_through_views(self):
        model = _mlp(9).materialize_flat()
        other = _mlp(10).materialize_flat()
        other.load_state_dict(model.state_dict())
        np.testing.assert_array_equal(other.flat_weights, model.flat_weights)

    def test_mixed_dtype_tree_is_a_no_op(self):
        a = Parameter(np.ones(3))
        b = Parameter(np.ones(2))
        b.data = b.data.astype(np.float64)  # force a mixed-dtype tree
        b.grad = np.zeros(2, dtype=np.float64)
        before = a.data
        assert materialize_parameters([a, b]) is None
        assert a.data is before  # untouched on the fallback
        assert materialize_parameters([]) is None

    def test_materialize_parameters_returns_plane_pair(self):
        model = _mlp(11)
        params = model.parameters()
        planes = materialize_parameters(params)
        assert planes is not None
        weight_plane, grad_plane = planes
        assert isinstance(weight_plane, ParamPlane)
        assert isinstance(grad_plane, GradPlane)
        grad_plane.flat[...] = 1.0
        grad_plane.zero_()
        assert (grad_plane.flat == 0.0).all()

    def test_rebind_rejects_mismatches(self):
        p = Parameter(np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="rebind data"):
            p.rebind(np.zeros((3, 2), dtype=np.float32), np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="rebind grad"):
            p.rebind(np.zeros((2, 3), dtype=np.float32), np.zeros((3, 2), dtype=np.float32))


# ---------------------------------------------------------------------------
# numerical gradients survive re-homing
# ---------------------------------------------------------------------------

def _smooth_fedmodel(seed=12):
    """A two-hidden-layer Tanh MLP: smooth everywhere, so the central
    differences of the numerical check are well defined at every entry
    (ReLU kinks make sampled checks flaky near zero pre-activations)."""
    from repro.models.fedmodel import FedModel
    from repro.nn import Linear, Sequential, Tanh

    rng = RngStream(seed).child("m").generator
    return FedModel(
        Sequential(Linear(9, 12, rng=rng), Tanh(), Linear(12, 8, rng=rng), Tanh()),
        Sequential(Linear(8, 5, rng=rng)),
        input_shape=(9,), name="smooth-mlp")


class TestPlaneBackedGradients:
    def test_gradcheck_through_plane_backed_model(self, rng):
        model = _smooth_fedmodel().materialize_flat()
        x = rng.standard_normal((4, 9)).astype(np.float32)
        check_layer_gradients(model, x)

    def test_plane_backed_gradients_match_tree_gradients(self, rng):
        x = rng.standard_normal((4, 9)).astype(np.float32)
        flat_model = _smooth_fedmodel().materialize_flat()
        tree_model = _smooth_fedmodel()
        for model in (flat_model, tree_model):
            out = model(x)
            model.zero_grad()
            model.backward(np.ones_like(out))
        np.testing.assert_array_equal(
            flat_model.flat_grads,
            np.concatenate([p.grad.ravel() for p in tree_model.parameters()]))
        assert float(np.abs(flat_model.flat_grads).sum()) > 0.0


# ---------------------------------------------------------------------------
# per-optimizer tree-vs-flat byte equivalence
# ---------------------------------------------------------------------------

OPTIMIZER_CASES = [
    ("sgd", dict(lr=0.05)),
    ("sgd+wd", dict(lr=0.05, weight_decay=0.01)),
    ("sgdm", dict(lr=0.05, momentum=0.9)),
    ("sgdm+wd", dict(lr=0.05, momentum=0.9, weight_decay=0.01)),
    ("nesterov", dict(lr=0.05, momentum=0.9, nesterov=True)),
    ("adam", dict(lr=0.01)),
    ("adam+wd", dict(lr=0.01, weight_decay=0.01)),
]


class TestOptimizerByteEquivalence:
    @pytest.mark.parametrize("name,kwargs", OPTIMIZER_CASES, ids=[c[0] for c in OPTIMIZER_CASES])
    def test_flat_step_matches_tree_step_bytes(self, name, kwargs):
        cls = Adam if name.startswith("adam") else SGD
        tree_model = _mlp(20)
        flat_model = _mlp(20).materialize_flat()
        tree_opt = cls(tree_model.parameters(), **kwargs)
        flat_opt = cls(flat_model.parameters(), flat_state=flat_model.flat_state(), **kwargs)
        rng = np.random.default_rng(0)
        for step in range(5):
            if step == 3:  # rounds reset momentum without touching weights
                tree_opt.reset_state()
                flat_opt.reset_state()
            grads = rng.standard_normal(flat_model.num_parameters()).astype(np.float32)
            flat_model.flat_grads[...] = grads
            cursor = 0
            for p in tree_model.parameters():
                p.grad[...] = grads[cursor:cursor + p.size].reshape(p.data.shape)
                cursor += p.size
            tree_opt.step()
            flat_opt.step()
            np.testing.assert_array_equal(
                flat_model.flat_weights,
                np.concatenate([p.data.ravel() for p in tree_model.parameters()]),
                err_msg=f"{name} diverged at step {step}")

    def test_weight_decay_folds_in_place_no_fresh_grad_array(self):
        for cls, kwargs in ((SGD, dict(lr=0.1, weight_decay=0.5)),
                            (Adam, dict(lr=0.1, weight_decay=0.5))):
            p = Parameter(np.full(4, 2.0, dtype=np.float32))
            p.grad[...] = 1.0
            grad_buffer = p.grad
            cls([p], **kwargs).step()
            assert p.grad is grad_buffer
            np.testing.assert_allclose(p.grad, 1.0 + 0.5 * 2.0, rtol=1e-6)

    def test_flat_state_size_validated(self):
        model = _mlp(21).materialize_flat()
        w, g = model.flat_state()
        with pytest.raises(ValueError, match="flat state"):
            SGD(model.parameters(), lr=0.1, flat_state=(w[:-1], g[:-1]))


# ---------------------------------------------------------------------------
# per-strategy tree-vs-flat byte equivalence through real client rounds
# ---------------------------------------------------------------------------

STRATEGY_CASES = ["fedavg", "fedprox", "fedtrip", "fedtrip_adaptive",
                  "feddyn", "scaffold", "mimelite", "feddane"]


def _make_fixture(method: str, flat: bool, max_grad_norm=None):
    """A one-client training fixture on either the plane path or the tree
    fallback: (worker, runtime, strategy)."""
    root = RngStream(0)
    model = build_model("mlp", (24,), 10, rng=root.child("model-init").generator)
    frozen = build_model("mlp", (24,), 10, rng=root.child("model-init").generator)
    frozen.eval()
    strategy = build_strategy(method)
    opt_name = strategy.local_optimizer or "sgdm"
    config = FLConfig(rounds=2, n_clients=2, clients_per_round=2, batch_size=10,
                      lr=0.05, optimizer=opt_name, max_grad_norm=max_grad_norm)
    optimizer = make_optimizer(opt_name, model if flat else model.parameters(), config)
    worker = WorkerContext(model, frozen, optimizer, CrossEntropyLoss())

    rng = np.random.default_rng(5)
    dataset = ArrayDataset(rng.standard_normal((20, 24)).astype(np.float32),
                           rng.integers(0, 10, 20))
    clients = [Client(0, dataset, seed=0)]
    glob = build_model("mlp", (24,), 10, rng=RngStream(9).child("g").generator)
    plane = ParamPlane.from_tree(glob.get_weights())
    runtime = TaskRuntime(clients=clients, strategy=strategy, config=config,
                          fp_flops=100.0, global_weights=plane.tree,
                          global_flat=plane.flat if flat else None)
    tree = plane.tree
    if method == "scaffold":
        runtime.server_broadcast = {"c": [np.full_like(w, 0.01) for w in tree]}
    elif method == "mimelite":
        runtime.server_broadcast = {"s": [np.full_like(w, 0.02) for w in tree]}
    elif method == "feddane":
        runtime.server_broadcast = {"g_agg": [np.full_like(w, 0.03) for w in tree]}
    return worker, runtime, strategy


def _client_round_result(method: str, flat: bool, max_grad_norm=None):
    """Train one client for two rounds (so historical/variate state is
    exercised) on either the plane path or the tree fallback."""
    worker, runtime, strategy = _make_fixture(method, flat, max_grad_norm)
    state = strategy.init_client_state(0)
    if method == "feddane":
        state["grad_at_global"] = [np.full_like(w, 0.01)
                                   for w in runtime.global_weights]
    update = None
    for round_idx in range(2):
        result = execute_task(
            ClientTaskSpec(client_id=0, round_idx=round_idx, state=state),
            worker, runtime)
        state = result.state
        update = result.update
    return update, state


def _cross_format_round(method: str, legs):
    """Round 0 on ``legs[0]``'s path, round 1 on ``legs[1]``'s — the state
    crosses representations between the rounds (a fresh worker per leg, as
    when a run is resumed under a different configuration)."""
    strategy = build_strategy(method)
    state = strategy.init_client_state(0)
    update = None
    for round_idx, flat in enumerate(legs):
        worker, runtime, _ = _make_fixture(method, flat)
        result = execute_task(
            ClientTaskSpec(client_id=0, round_idx=round_idx, state=state),
            worker, runtime)
        state = result.state
        update = result.update
    return update, state


class TestStrategyFlatEquivalence:
    @pytest.mark.parametrize("method", STRATEGY_CASES)
    def test_trained_weights_byte_identical(self, method):
        flat_update, _ = _client_round_result(method, flat=True)
        tree_update, _ = _client_round_result(method, flat=False)
        np.testing.assert_array_equal(
            flat_update.flat_vector(), tree_update.flat_vector(),
            err_msg=f"{method}: plane path diverged from the tree path")
        assert flat_update.flops == tree_update.flops
        assert flat_update.train_loss == tree_update.train_loss

    def test_scaffold_flat_delta_matches_tree_delta(self):
        flat_update, flat_state = _client_round_result("scaffold", flat=True)
        tree_update, tree_state = _client_round_result("scaffold", flat=False)
        assert isinstance(flat_update.extras["c_delta"], np.ndarray)
        np.testing.assert_array_equal(
            flat_update.extras["c_delta"],
            np.concatenate([d.ravel() for d in tree_update.extras["c_delta"]]))
        np.testing.assert_array_equal(
            flat_state["c_k"],
            np.concatenate([c.ravel() for c in tree_state["c_k"]]))

    def test_fedtrip_historical_state_is_flat(self):
        _, state = _client_round_result("fedtrip", flat=True)
        assert isinstance(state["historical"], np.ndarray)
        _, state = _client_round_result("fedtrip", flat=False)
        assert isinstance(state["historical"], list)

    @pytest.mark.parametrize("method", ["fedtrip", "feddyn", "scaffold"])
    def test_state_crosses_between_plane_and_tree_runs(self, method):
        """A state written by a plane-backed run must train identically when
        resumed on the tree fallback (conversion, not scalar broadcasting),
        and vice versa."""
        results = {}
        for label, legs in (("flat->tree", (True, False)),
                            ("tree->flat", (False, True)),
                            ("tree->tree", (False, False))):
            update, _ = _cross_format_round(method, legs)
            results[label] = update.flat_vector()
        np.testing.assert_array_equal(
            results["flat->tree"], results["tree->tree"],
            err_msg=f"{method}: flat-born state corrupted the tree path")
        np.testing.assert_array_equal(
            results["tree->flat"], results["tree->tree"],
            err_msg=f"{method}: tree-born state corrupted the flat path")

    def test_upload_does_not_alias_the_worker_plane(self):
        update, _ = _client_round_result("fedavg", flat=True)
        snapshot = update.flat_vector().copy()
        # a later round mutates the worker model; the upload must not move
        _client_round_result("fedavg", flat=True)
        np.testing.assert_array_equal(update.flat_vector(), snapshot)


# ---------------------------------------------------------------------------
# flat clipping
# ---------------------------------------------------------------------------

class TestFlatClipping:
    def test_flat_clip_matches_tree_clip_values(self):
        rng = np.random.default_rng(3)
        grads = (rng.standard_normal(200) * 5).astype(np.float32)
        params = []
        cursor = 0
        for size in (64, 64, 72):
            p = Parameter(np.zeros(size, dtype=np.float32))
            p.grad[...] = grads[cursor:cursor + size]
            cursor += size
            params.append(p)
        flat = grads.copy()
        pre_tree = clip_grad_norm(params, 1.0)
        pre_flat = clip_grad_norm_flat(flat, 1.0)
        assert pre_flat == pytest.approx(pre_tree, rel=1e-6)
        np.testing.assert_allclose(
            flat, np.concatenate([p.grad for p in params]), rtol=1e-6)

    def test_no_clip_below_threshold(self):
        g = np.array([0.3, 0.4], dtype=np.float32)
        assert clip_grad_norm_flat(g, 1.0) == pytest.approx(0.5)
        np.testing.assert_allclose(g, [0.3, 0.4], rtol=1e-6)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm_flat(np.ones(2, dtype=np.float32), 0.0)

    def test_strategy_equivalence_holds_under_clipping(self):
        # Clipping scales are computed from one flat reduction on both legs
        # here (the tree leg uses a non-plane model, whose per-layer norm
        # may differ in the last bits) — so compare trajectories loosely.
        flat_update, _ = _client_round_result("fedtrip", flat=True, max_grad_norm=0.5)
        tree_update, _ = _client_round_result("fedtrip", flat=False, max_grad_norm=0.5)
        np.testing.assert_allclose(
            flat_update.flat_vector(), tree_update.flat_vector(), atol=1e-5)


# ---------------------------------------------------------------------------
# determinism grid on the clipped flat path (the one re-pinned reduction)
# ---------------------------------------------------------------------------

TINY_CLIP = dict(dataset="tiny", model="mlp", method="fedtrip", n_clients=4,
                 clients_per_round=2, rounds=3, batch_size=20, lr=0.05,
                 max_grad_norm=0.5)


def _signature(history):
    return [
        (r.round_idx, tuple(r.selected), r.test_accuracy, r.test_loss,
         r.mean_train_loss, r.cumulative_flops, r.cumulative_comm_bytes)
        for r in history.records
    ]


class TestClippedDeterminismGrid:
    def test_byte_identity_across_executors_and_modes(self):
        """Fixed seed => byte-identical History on the clipped flat path,
        for every executor x mode cell (the flat grad norm is one reduction,
        applied uniformly everywhere).  Sync and full-buffer semisync share
        one reference (semisync degenerates to the barrier loop); async —
        the mode that needs clipping in production — aggregates differently
        by design, so its cells get their own cross-executor reference."""
        references = {}
        for executor in ("serial", "threaded", "process"):
            for mode in ("sync", "semisync", "async"):
                spec = ExperimentSpec(**{**TINY_CLIP, "executor": executor,
                                         "mode": mode,
                                         "n_workers": 2 if executor != "serial" else 1,
                                         **({"device_profile": "iot"}
                                            if mode != "sync" else {})})
                sig = _signature(run_experiment(spec))
                key = "async" if mode == "async" else "barrier"
                if key not in references:
                    references[key] = sig
                else:
                    assert sig == references[key], f"{executor}/{mode} diverged"
        assert references["async"] != references["barrier"]  # sanity: it ran
