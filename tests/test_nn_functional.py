"""Tests for repro.nn.functional kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.standard_normal((6, 5))
        s = F.softmax(x, axis=1)
        np.testing.assert_allclose(s.sum(axis=1), 1.0, atol=1e-6)
        assert (s > 0).all()

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((4, 7))
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0), atol=1e-6)

    def test_extreme_values_stable(self):
        x = np.array([[1e4, -1e4, 0.0]])
        s = F.softmax(x)
        assert np.isfinite(s).all()
        np.testing.assert_allclose(s[0, 0], 1.0, atol=1e-6)

    def test_log_softmax_consistent(self, rng):
        x = rng.standard_normal((5, 6))
        np.testing.assert_allclose(F.log_softmax(x), np.log(F.softmax(x)), atol=1e-6)


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)


class TestCosineSimilarity:
    def test_self_similarity_is_one(self, rng):
        a = rng.standard_normal((5, 8))
        np.testing.assert_allclose(F.cosine_similarity(a, a), 1.0, atol=1e-6)

    def test_orthogonal(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        np.testing.assert_allclose(F.cosine_similarity(a, b), 0.0, atol=1e-9)

    def test_antiparallel(self):
        a = np.array([[1.0, 2.0]])
        np.testing.assert_allclose(F.cosine_similarity(a, -a), -1.0, atol=1e-6)

    def test_zero_vector_safe(self):
        a = np.zeros((1, 3))
        b = np.ones((1, 3))
        out = F.cosine_similarity(a, b)
        assert np.isfinite(out).all()


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,k,s,p,expected",
        [(28, 5, 1, 2, 28), (28, 5, 1, 0, 24), (8, 2, 2, 0, 4), (7, 3, 2, 1, 4)],
    )
    def test_known_values(self, size, k, s, p, expected):
        assert F.conv_output_size(size, k, s, p) == expected

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def _naive_conv(self, x, w, b, stride, pad):
        n, c, h, wd = x.shape
        f, _, kh, kw = w.shape
        oh = F.conv_output_size(h, kh, stride, pad)
        ow = F.conv_output_size(wd, kw, stride, pad)
        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        out = np.zeros((n, f, oh, ow), dtype=np.float64)
        for ni in range(n):
            for fi in range(f):
                for i in range(oh):
                    for j in range(ow):
                        patch = xp[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                        out[ni, fi, i, j] = np.sum(patch * w[fi]) + b[fi]
        return out

    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 2), (2, 1)])
    def test_gemm_conv_matches_naive(self, rng, stride, pad):
        from repro.nn import Conv2d

        x = rng.standard_normal((2, 3, 7, 7)).astype(np.float32)
        conv = Conv2d(3, 4, kernel_size=3, stride=stride, padding=pad, rng=rng)
        got = conv(x)
        want = self._naive_conv(x, conv.weight.data, conv.bias.data, stride, pad)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_col2im_inverts_scatter(self, rng):
        """col2im(im2col-expansion of ones) counts window coverage."""
        x_shape = (1, 1, 5, 5)
        cols, (oh, ow) = F.im2col(np.ones(x_shape, dtype=np.float32), 3, 3, 1, 0)
        back = F.col2im(np.ones_like(cols), x_shape, 3, 3, 1, 0)
        # Centre pixel is covered by 9 windows, corners by 1.
        assert back[0, 0, 2, 2] == 9
        assert back[0, 0, 0, 0] == 1
        assert back[0, 0, 0, 2] == 3

    def test_im2col_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        cols, (oh, ow) = F.im2col(x, 3, 3, 1, 1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 64, 3 * 9)
