"""Bridging theory to implementation: Definition 1's gamma and server
fault tolerance."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FLConfig, Simulation, build_strategy
from repro.analysis import measure_inexactness
from repro.data import ArrayDataset
from repro.fl.server import Server
from repro.fl.types import ClientUpdate
from repro.models import build_mlp
from repro.nn.losses import CrossEntropyLoss
from repro.optim import SGD


def _train_local(model, dataset, epochs, lr=0.1, mu=0.0, global_weights=None):
    crit = CrossEntropyLoss()
    opt = SGD(model.parameters(), lr=lr)
    for _ in range(epochs):
        logits = model(dataset.x)
        _, d = crit(logits, dataset.y)
        model.zero_grad()
        model.backward(d)
        if mu > 0 and global_weights is not None:
            for p, g in zip(model.parameters(), global_weights):
                p.grad += mu * (p.data - g)
        opt.step()


@pytest.fixture
def local_task(rng):
    x = rng.standard_normal((60, 1, 3, 3)).astype(np.float32)
    y = (x.reshape(60, -1).sum(axis=1) > 0).astype(np.int64)
    return ArrayDataset(x, y)


class TestGammaInexactness:
    def test_no_training_gamma_one(self, local_task, rng):
        """At w_k = w_g with mu=0: grad h = grad F_k(w_g), so gamma = 1."""
        model = build_mlp((1, 3, 3), 2, hidden=4, rng=rng)
        w = model.get_weights()
        gamma = measure_inexactness(model, local_task, w, w, mu=0.0)
        assert gamma == pytest.approx(1.0, rel=1e-4)

    def test_more_local_work_shrinks_gamma(self, local_task, rng):
        """Solving the proximal subproblem more exactly lowers gamma —
        Definition 1's whole point."""
        mu = 0.5
        gammas = {}
        for epochs in (2, 60):
            model = build_mlp((1, 3, 3), 2, hidden=4, rng=np.random.default_rng(0))
            w_g = model.get_weights()
            _train_local(model, local_task, epochs, mu=mu, global_weights=w_g)
            gammas[epochs] = measure_inexactness(
                model, local_task, w_g, model.get_weights(), mu=mu
            )
        assert gammas[60] < gammas[2]

    def test_restores_model_weights(self, local_task, rng):
        model = build_mlp((1, 3, 3), 2, hidden=4, rng=rng)
        before = model.get_weights()
        other = [w + 1.0 for w in before]
        measure_inexactness(model, local_task, other, before, mu=0.1)
        for a, b in zip(model.get_weights(), before):
            np.testing.assert_array_equal(a, b)

    def test_historical_term_changes_gamma(self, local_task, rng):
        model = build_mlp((1, 3, 3), 2, hidden=4, rng=rng)
        w_g = model.get_weights()
        _train_local(model, local_task, 5)
        w_k = model.get_weights()
        hist = [w - 0.5 for w in w_k]
        g0 = measure_inexactness(model, local_task, w_g, w_k, mu=0.5, xi=0.0)
        g1 = measure_inexactness(model, local_task, w_g, w_k, mu=0.5, xi=1.0,
                                 historical_weights=hist)
        assert g0 != g1


class TestServerFaultTolerance:
    def _update(self, cid, values, n=5):
        return ClientUpdate(cid, [np.asarray(values, dtype=np.float32)], n, 0.0)

    def _server(self):
        cfg = FLConfig(rounds=1, n_clients=4, clients_per_round=2)
        return Server([np.zeros(2, dtype=np.float32)], build_strategy("fedavg"), cfg)

    def test_nan_update_dropped(self):
        server = self._server()
        server.apply_updates([
            self._update(0, [1.0, 1.0]),
            self._update(1, [np.nan, 2.0]),
        ])
        np.testing.assert_allclose(server.weights[0], [1.0, 1.0])

    def test_inf_update_dropped(self):
        server = self._server()
        server.apply_updates([
            self._update(0, [2.0, 2.0]),
            self._update(1, [np.inf, 0.0]),
        ])
        np.testing.assert_allclose(server.weights[0], [2.0, 2.0])

    def test_all_bad_skips_round_keeping_weights(self):
        server = self._server()
        before = [w.copy() for w in server.weights]
        server.apply_updates([self._update(0, [np.nan, np.nan])])
        for a, b in zip(server.weights, before):
            np.testing.assert_array_equal(a, b)
        assert server.skipped_rounds == 1
        assert server.round_idx == 1  # the round still advances

    def test_healthy_round_unaffected(self):
        server = self._server()
        server.apply_updates([
            self._update(0, [1.0, 3.0]),
            self._update(1, [3.0, 1.0]),
        ])
        np.testing.assert_allclose(server.weights[0], [2.0, 2.0])

    def test_simulation_survives_diverging_client(self, tiny_data):
        """A strategy that poisons one client's weights must not take down
        the global model."""
        from repro.algorithms import FedAvg

        class Saboteur(FedAvg):
            def on_round_end(self, ctx):
                if ctx.client_id == 0:
                    for p in ctx.model.parameters():
                        p.data[...] = np.nan

        cfg = FLConfig(rounds=3, n_clients=6, clients_per_round=3,
                       batch_size=20, lr=0.05, seed=0)
        sim = Simulation(tiny_data, Saboteur(), cfg, model_name="mlp")
        hist = sim.run()
        for w in sim.server.weights:
            assert np.isfinite(w).all()
        acc = hist.accuracies()
        assert np.isfinite(acc[~np.isnan(acc)]).all()
        sim.close()
