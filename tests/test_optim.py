"""Optimizers and LR schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, Adam, ConstantLR, CosineLR, StepDecayLR


def _param(values):
    p = Parameter(np.asarray(values, dtype=np.float32))
    return p


class TestSGD:
    def test_plain_step(self):
        p = _param([1.0, 2.0])
        p.grad[...] = [0.5, 0.5]
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 1.95], atol=1e-6)

    def test_momentum_accumulates(self):
        p = _param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad[...] = 1.0
        opt.step()  # v=1, w=-1
        p.grad[...] = 1.0
        opt.step()  # v=1.9, w=-2.9
        np.testing.assert_allclose(p.data, [-2.9], atol=1e-6)

    def test_reset_state_clears_velocity(self):
        p = _param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad[...] = 1.0
        opt.step()
        opt.reset_state()
        p.data[...] = 0.0
        p.grad[...] = 1.0
        opt.step()
        np.testing.assert_allclose(p.data, [-1.0], atol=1e-6)

    def test_weight_decay(self):
        p = _param([1.0])
        p.grad[...] = 0.0
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [0.95], atol=1e-6)

    def test_nesterov_differs_from_heavy_ball(self):
        p1, p2 = _param([0.0]), _param([0.0])
        o1 = SGD([p1], lr=0.1, momentum=0.9)
        o2 = SGD([p2], lr=0.1, momentum=0.9, nesterov=True)
        for _ in range(3):
            p1.grad[...] = 1.0
            p2.grad[...] = 1.0
            o1.step()
            o2.step()
        assert p1.data[0] != p2.data[0]

    def test_nesterov_without_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([_param([0.0])], lr=0.1, nesterov=True)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([_param([0.0])], lr=0.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        p = _param([1.0])
        p.grad[...] = 3.0
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad[0] == 0.0


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, |first step| == lr regardless of grad scale."""
        for g in [0.001, 1.0, 1000.0]:
            p = _param([0.0])
            p.grad[...] = g
            Adam([p], lr=0.1).step()
            np.testing.assert_allclose(abs(p.data[0]), 0.1, rtol=1e-4)

    def test_converges_on_quadratic(self):
        p = _param([5.0])
        opt = Adam([p], lr=0.5)
        for _ in range(200):
            p.grad[...] = 2 * p.data  # grad of x^2
            opt.step()
        assert abs(p.data[0]) < 0.05

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([_param([0.0])], betas=(1.0, 0.9))

    def test_reset_state(self):
        p = _param([0.0])
        opt = Adam([p], lr=0.1)
        p.grad[...] = 1.0
        opt.step()
        opt.reset_state()
        assert opt._t == 0


class TestSchedules:
    def test_constant(self):
        sched = ConstantLR(0.01)
        assert sched(0) == sched(100) == 0.01

    def test_step_decay(self):
        sched = StepDecayLR(0.1, step=10, gamma=0.5)
        assert sched(0) == 0.1
        assert sched(10) == pytest.approx(0.05)
        assert sched(25) == pytest.approx(0.025)

    def test_cosine_endpoints(self):
        sched = CosineLR(0.1, total=100, lr_min=0.01)
        assert sched(0) == pytest.approx(0.1)
        assert sched(100) == pytest.approx(0.01)
        assert sched(50) == pytest.approx(0.055)

    def test_cosine_monotone_decreasing(self):
        sched = CosineLR(0.1, total=50)
        vals = [sched(t) for t in range(51)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)
        with pytest.raises(ValueError):
            StepDecayLR(0.1, step=0)
        with pytest.raises(ValueError):
            CosineLR(0.1, total=10, lr_min=0.2)
