"""Per-layer profiling and feature-skew federated pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FLConfig, Simulation, build_federated_data, build_strategy
from repro.models import build_cnn, build_mlp, format_layer_summary, layer_summary, profile_model


class TestLayerSummary:
    def test_totals_match_profile(self, rng):
        model = build_cnn((1, 28, 28), 10, rng=rng)
        rows = layer_summary(model)
        total = rows[-1]
        prof = profile_model(model)
        assert total["layer"] == "TOTAL"
        assert total["params"] == prof.num_params
        assert total["forward_flops"] == prof.forward_flops

    def test_shapes_chain(self, rng):
        model = build_mlp((1, 4, 4), 3, hidden=5, rng=rng)
        rows = layer_summary(model)
        assert rows[-1]["output_shape"] == (3,)
        # Every layer's declared shape must feed the next one without error
        # (layer_summary would have raised otherwise); first is the flatten.
        assert rows[0]["output_shape"] == (16,)

    def test_format_renders_table(self, rng):
        model = build_mlp((1, 4, 4), 3, rng=rng)
        text = format_layer_summary(model)
        assert "TOTAL" in text
        assert "Linear" in text
        assert "fwd FLOPs" in text

    def test_custom_input_shape(self, rng):
        model = build_cnn((1, 12, 12), 10, rng=rng)
        rows_small = layer_summary(model, (1, 12, 12))
        assert rows_small[-1]["forward_flops"] == profile_model(model).forward_flops


class TestFeatureSkewPipeline:
    def test_transforms_change_client_data(self):
        plain = build_federated_data("tiny", n_clients=4, partition="iid", seed=0)
        skew = build_federated_data("tiny", n_clients=4, partition="iid", seed=0,
                                    feature_skew=True)
        for k in range(4):
            a = plain.client_dataset(k)
            b = skew.client_dataset(k)
            np.testing.assert_array_equal(a.y, b.y)  # labels untouched
            assert not np.allclose(a.x, b.x)

    def test_skew_is_deterministic(self):
        skew = build_federated_data("tiny", n_clients=4, partition="iid", seed=0,
                                    feature_skew=True)
        a = skew.client_dataset(1).x
        b = skew.client_dataset(1).x
        np.testing.assert_array_equal(a, b)

    def test_clients_see_different_skews(self):
        skew = build_federated_data("tiny", n_clients=4, partition="iid", seed=0,
                                    feature_skew=True)
        # Same underlying distribution (iid), different transforms -> the
        # per-client pixel statistics must differ.
        means = [float(skew.client_dataset(k).x.mean()) for k in range(4)]
        assert np.std(means) > 1e-3

    def test_transform_count_validated(self):
        from repro.data import FederatedData, ArrayDataset
        from repro.data.specs import get_spec

        x = np.zeros((10, 1, 8, 8), dtype=np.float32)
        y = np.zeros(10, dtype=np.int64)
        with pytest.raises(ValueError):
            FederatedData(
                spec=get_spec("tiny"),
                train=ArrayDataset(x, y),
                test=ArrayDataset(x, y),
                client_shards=[np.arange(5), np.arange(5, 10)],
                partition_kind="iid",
                client_transforms=[lambda x, r: x],  # only 1 for 2 clients
            )

    def test_feature_skew_training_runs(self):
        data = build_federated_data("tiny", n_clients=4, partition="iid", seed=0,
                                    feature_skew=True)
        cfg = FLConfig(rounds=2, n_clients=4, clients_per_round=2,
                       batch_size=20, lr=0.05, seed=0)
        sim = Simulation(data, build_strategy("fedtrip"), cfg, model_name="mlp")
        hist = sim.run()
        assert np.isfinite(hist.accuracies()).all()
        sim.close()

    def test_feature_skew_hurts_plain_fedavg(self):
        """Feature non-IID should make the task at least as hard as IID
        (lower or equal accuracy at fixed budget)."""
        accs = {}
        for skewed in (False, True):
            data = build_federated_data("tiny", n_clients=6, partition="iid",
                                        seed=0, feature_skew=skewed)
            cfg = FLConfig(rounds=4, n_clients=6, clients_per_round=3,
                           batch_size=20, lr=0.05, seed=0)
            sim = Simulation(data, build_strategy("fedavg"), cfg, model_name="mlp")
            accs[skewed] = sim.run().best_accuracy()
            sim.close()
        assert accs[True] <= accs[False] + 8.0
