"""Declarative sweep runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentCell, SweepRunner, SweepSpec, run_cell


BASE = ExperimentCell(dataset="tiny", model="mlp", method="fedavg",
                      n_clients=4, clients_per_round=2, rounds=2,
                      batch_size=20, lr=0.05)


class TestExperimentCell:
    def test_with_axis_known_field(self):
        cell = BASE.with_axis("lr", 0.1)
        assert cell.lr == 0.1
        assert BASE.lr == 0.05  # frozen original untouched

    def test_with_axis_unknown_goes_to_overrides(self):
        cell = BASE.with_axis("mu", 0.8)
        assert dict(cell.overrides) == {"mu": 0.8}

    def test_config_dict_roundtrip(self):
        cell = BASE.with_axis("mu", 0.8)
        d = cell.config_dict()
        assert d["overrides"] == {"mu": 0.8}
        assert d["dataset"] == "tiny"


class TestSweepSpec:
    def test_cross_product_size(self):
        spec = SweepSpec(BASE, axes={"lr": [0.01, 0.1], "seed": [0, 1, 2]})
        assert len(spec) == 6
        cells = list(spec.cells())
        assert len(cells) == 6
        assert len({(c.lr, c.seed) for c in cells}) == 6

    def test_no_axes_single_cell(self):
        spec = SweepSpec(BASE)
        assert len(spec) == 1
        assert list(spec.cells()) == [BASE]


class TestRunCell:
    def test_produces_history(self):
        hist = run_cell(BASE)
        assert len(hist) == BASE.rounds
        assert hist.best_accuracy() > 0

    def test_deterministic(self):
        h1, h2 = run_cell(BASE), run_cell(BASE)
        np.testing.assert_array_equal(h1.accuracies(), h2.accuracies())

    def test_overrides_applied(self):
        """FedTrip with mu=0 must match FedAvg exactly."""
        trip_cell = ExperimentCell(dataset="tiny", model="mlp", method="fedtrip",
                                   n_clients=4, clients_per_round=2, rounds=2,
                                   batch_size=20, lr=0.05, overrides=(("mu", 0.0),))
        avg_cell = ExperimentCell(dataset="tiny", model="mlp", method="fedavg",
                                  n_clients=4, clients_per_round=2, rounds=2,
                                  batch_size=20, lr=0.05)
        np.testing.assert_allclose(run_cell(avg_cell).accuracies(),
                                   run_cell(trip_cell).accuracies(), atol=1e-5)


class TestSweepRunner:
    def test_run_without_store(self):
        spec = SweepSpec(BASE, axes={"seed": [0, 1]})
        results = SweepRunner().run(spec)
        assert len(results) == 2

    def test_store_caching(self, tmp_path):
        spec = SweepSpec(BASE, axes={"seed": [0, 1]})
        runner = SweepRunner(store_dir=str(tmp_path / "runs"))
        first = runner.run(spec)
        # Second run must come from disk (same values).
        second = runner.run(spec)
        for key in first:
            np.testing.assert_array_equal(first[key].accuracies(),
                                          second[key].accuracies())
        assert len(list(runner.store.keys())) == 2

    def test_summarize_rows(self, tmp_path):
        spec = SweepSpec(BASE, axes={"lr": [0.01, 0.1]})
        runner = SweepRunner(store_dir=str(tmp_path / "runs"))
        rows = runner.summarize(spec, metric="best_accuracy")
        assert len(rows) == 2
        assert {r["lr"] for r in rows} == {0.01, 0.1}
        assert all("best_accuracy" in r for r in rows)

    def test_summarize_with_kwargs(self, tmp_path):
        spec = SweepSpec(BASE, axes={"seed": [0]})
        runner = SweepRunner(store_dir=str(tmp_path / "runs"))
        rows = runner.summarize(spec, metric="rounds_to_accuracy", target=5.0)
        assert len(rows) == 1

    def test_override_axis_sweep(self, tmp_path):
        base = ExperimentCell(dataset="tiny", model="mlp", method="fedtrip",
                              n_clients=4, clients_per_round=2, rounds=2,
                              batch_size=20, lr=0.05)
        spec = SweepSpec(base, axes={"mu": [0.1, 0.4]})
        rows = SweepRunner().summarize(spec, metric="best_accuracy")
        assert {r["mu"] for r in rows} == {0.1, 0.4}
