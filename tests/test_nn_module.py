"""Module tree traversal, weight I/O, state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.models import build_mlp


@pytest.fixture
def mlp(rng):
    return build_mlp((1, 4, 4), 3, hidden=6, rng=rng)


class TestTraversal:
    def test_parameter_order_deterministic(self, rng):
        m1 = build_mlp((1, 4, 4), 3, hidden=6, rng=np.random.default_rng(1))
        m2 = build_mlp((1, 4, 4), 3, hidden=6, rng=np.random.default_rng(2))
        names1 = [n for n, _ in m1.named_parameters()]
        names2 = [n for n, _ in m2.named_parameters()]
        assert names1 == names2

    def test_num_parameters(self, mlp):
        # Flatten->Linear(16,6)+ReLU | Linear(6,3): 16*6+6 + 6*3+3 = 123
        assert mlp.num_parameters() == 16 * 6 + 6 + 6 * 3 + 3

    def test_modules_walk(self, mlp):
        kinds = [type(m).__name__ for _, m in mlp.modules()]
        assert "Linear" in kinds and "Sequential" in kinds and "FedModel" in kinds

    def test_named_parameters_have_paths(self, mlp):
        names = [n for n, _ in mlp.named_parameters()]
        assert any(n.startswith("features.") for n in names)
        assert any(n.startswith("head.") for n in names)


class TestWeightIO:
    def test_get_set_roundtrip(self, mlp, rng):
        weights = mlp.get_weights()
        new = [rng.standard_normal(w.shape).astype(np.float32) for w in weights]
        mlp.set_weights(new)
        for got, want in zip(mlp.get_weights(), new):
            np.testing.assert_array_equal(got, want)

    def test_get_weights_is_detached(self, mlp):
        w = mlp.get_weights()
        w[0][...] = 999.0
        assert not np.any(mlp.get_weights()[0] == 999.0)

    def test_set_wrong_count_raises(self, mlp):
        with pytest.raises(ValueError):
            mlp.set_weights(mlp.get_weights()[:-1])

    def test_set_wrong_shape_raises(self, mlp):
        w = mlp.get_weights()
        w[0] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            mlp.set_weights(w)

    def test_state_dict_roundtrip(self, mlp, rng):
        state = mlp.state_dict()
        other = build_mlp((1, 4, 4), 3, hidden=6, rng=rng)
        other.load_state_dict(state)
        for (n1, p1), (n2, p2) in zip(mlp.named_parameters(), other.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_load_state_dict_mismatch_raises(self, mlp):
        state = mlp.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            mlp.load_state_dict(state)


class TestModes:
    def test_train_eval_propagates(self, mlp):
        mlp.eval()
        assert all(not m.training for _, m in mlp.modules())
        mlp.train()
        assert all(m.training for _, m in mlp.modules())

    def test_zero_grad(self, mlp, rng):
        x = rng.standard_normal((2, 1, 4, 4)).astype(np.float32)
        logits = mlp(x)
        mlp.backward(np.ones_like(logits))
        assert any(np.abs(p.grad).sum() > 0 for p in mlp.parameters())
        mlp.zero_grad()
        assert all(np.abs(p.grad).sum() == 0 for p in mlp.parameters())


class TestParameter:
    def test_copy_preserves_identity(self):
        p = nn.Parameter(np.zeros((2, 2)))
        buf = p.data
        p.copy_(np.ones((2, 2)))
        assert p.data is buf
        np.testing.assert_array_equal(p.data, 1.0)

    def test_copy_shape_mismatch_raises(self):
        p = nn.Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.copy_(np.zeros(3))

    def test_dtype_is_float32(self):
        p = nn.Parameter(np.zeros((2, 2), dtype=np.float64))
        assert p.data.dtype == np.float32
        assert p.grad.dtype == np.float32
