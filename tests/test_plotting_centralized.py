"""Terminal plotting primitives and the centralized baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import box_plot, heatmap, line_plot, scatter
from repro.fl import train_centralized
from repro.models import build_mlp


class TestLinePlot:
    def test_renders_series_and_legend(self):
        out = line_plot({"fedtrip": [1, 5, 9], "fedavg": [1, 3, 5]}, width=30, height=8)
        assert "*=fedtrip" in out
        assert "o=fedavg" in out
        assert "9.00" in out and "1.00" in out

    def test_handles_nan(self):
        out = line_plot({"a": [1.0, np.nan, 3.0]}, width=20, height=6)
        assert "3.00" in out

    def test_constant_series(self):
        out = line_plot({"flat": [2.0, 2.0, 2.0]}, width=20, height=6)
        assert "2.00" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": [1]}, width=2)
        with pytest.raises(ValueError):
            line_plot({"a": [np.nan]})


class TestBoxPlot:
    def _stats(self, lo, q1, med, q3, hi):
        return {"min": lo, "q1": q1, "median": med, "q3": q3, "max": hi}

    def test_renders_quartiles(self):
        out = box_plot({"m": self._stats(0, 2, 5, 8, 10)}, width=40)
        assert "med=5.0" in out
        assert "=" in out and "|" in out

    def test_multiple_rows_aligned(self):
        out = box_plot({
            "fedtrip": self._stats(80, 85, 88, 90, 92),
            "fedavg": self._stats(70, 75, 78, 80, 85),
        }, width=40)
        lines = [ln for ln in out.split("\n") if "med=" in ln]
        assert len(lines) == 2
        assert lines[0].index("[") == lines[1].index("[")

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError):
            box_plot({"x": {"min": 0, "max": 1}})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_plot({})


class TestHeatmap:
    def test_shape_and_scale_line(self):
        m = np.arange(12).reshape(3, 4)
        out = heatmap(m, row_labels=["a", "b", "c"], col_labels=list("wxyz"))
        lines = out.split("\n")
        assert len(lines) == 5  # header + 3 rows + scale
        assert "scale:" in lines[-1]

    def test_extremes_use_extreme_shades(self):
        m = np.array([[0.0, 100.0]])
        out = heatmap(m)
        assert "@" in out and " " in out.split("\n")[0] + out.split("\n")[0]

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(3))


class TestScatter:
    def test_plots_points_with_labels(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.2]])
        out = scatter(pts, labels=np.array([0, 1, 2]), width=20, height=10)
        assert "0" in out and "1" in out and "2" in out

    def test_unlabeled_uses_dot(self):
        out = scatter(np.array([[0.0, 0.0], [1.0, 1.0]]), width=10, height=5)
        assert "•" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            scatter(np.zeros((3, 2)), labels=np.zeros(2))


class TestCentralizedBaseline:
    def test_trains_and_records(self, tiny_data, rng):
        model = build_mlp(tiny_data.spec.input_shape, tiny_data.spec.num_classes, rng=rng)
        res = train_centralized(tiny_data, model, epochs=5, batch_size=20, lr=0.05)
        assert len(res.accuracies) == 5
        assert res.best_accuracy > 40.0  # 4-class tiny task learns quickly

    def test_upper_bounds_federated(self, tiny_data, small_config, rng):
        """Pooled training should beat the FL run given equal data/steps."""
        from repro import Simulation, build_strategy

        sim = Simulation(tiny_data, build_strategy("fedavg"), small_config,
                         model_name="mlp")
        fed_acc = sim.run().best_accuracy()
        sim.close()
        model = build_mlp(tiny_data.spec.input_shape, tiny_data.spec.num_classes, rng=rng)
        res = train_centralized(tiny_data, model, epochs=8, batch_size=20, lr=0.05)
        assert res.best_accuracy >= fed_acc - 5.0

    def test_epochs_to_accuracy(self, tiny_data, rng):
        model = build_mlp(tiny_data.spec.input_shape, tiny_data.spec.num_classes, rng=rng)
        res = train_centralized(tiny_data, model, epochs=6, batch_size=20, lr=0.05)
        e = res.epochs_to_accuracy(30.0)
        assert e is None or 1 <= e <= 6

    def test_validation(self, tiny_data, rng):
        model = build_mlp(tiny_data.spec.input_shape, tiny_data.spec.num_classes, rng=rng)
        with pytest.raises(ValueError):
            train_centralized(tiny_data, model, epochs=0)
