"""End-to-end learning behaviour on small but real federated workloads.

These tests assert the qualitative claims the paper's evaluation rests on,
at reduced scale: every method learns; FedTrip is competitive with the best
baseline under heterogeneity; MOON pays a large compute premium; FedTrip's
communication premium is zero.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FLConfig, Simulation, build_federated_data, build_strategy
from repro.algorithms import PAPER_EVALUATED


@pytest.fixture(scope="module")
def mini_data():
    return build_federated_data(
        "mini_mnist", n_clients=10, partition="dirichlet", alpha=0.5, seed=0
    )


@pytest.fixture(scope="module")
def mini_config():
    return FLConfig(
        rounds=12, n_clients=10, clients_per_round=4, batch_size=50, lr=0.05, seed=0
    )


@pytest.fixture(scope="module")
def histories(mini_data, mini_config):
    """Train all six paper methods once; share across assertions."""
    out = {}
    for name in PAPER_EVALUATED:
        strat = build_strategy(name, model="mlp", dataset="mini_mnist")
        sim = Simulation(mini_data, strat, mini_config, model_name="mlp")
        out[name] = (sim, sim.run())
    return out


class TestAllMethodsLearn:
    def test_every_method_beats_chance(self, histories):
        for name, (_, hist) in histories.items():
            assert hist.best_accuracy() > 30.0, f"{name} failed to learn (10% = chance)"

    def test_every_method_improves_over_time(self, histories):
        for name, (_, hist) in histories.items():
            acc = hist.accuracies()
            assert np.nanmean(acc[-3:]) > np.nanmean(acc[:2]) + 5.0, name


class TestPaperShapeClaims:
    def test_fedtrip_competitive_with_best(self, histories):
        """FedTrip's final accuracy is within a few points of the best method
        (in the paper it usually *is* the best)."""
        finals = {
            name: hist.final_accuracy_stats(last_k=3)["mean"]
            for name, (_, hist) in histories.items()
        }
        best = max(finals.values())
        assert finals["fedtrip"] >= best - 6.0, finals

    def test_fedtrip_not_slower_than_fedavg_to_target(self, histories):
        target = 60.0
        r_trip = histories["fedtrip"][1].rounds_to_accuracy(target)
        r_avg = histories["fedavg"][1].rounds_to_accuracy(target)
        assert r_trip is not None
        if r_avg is not None:
            assert r_trip <= r_avg + 2

    def test_moon_compute_premium(self, histories):
        """Table V's core claim: MOON's FLOPs dwarf FedTrip's."""
        f_moon = histories["moon"][1].flops()[-1]
        f_trip = histories["fedtrip"][1].flops()[-1]
        f_avg = histories["fedavg"][1].flops()[-1]
        assert f_moon > 1.5 * f_trip
        assert f_trip < 1.1 * f_avg

    def test_no_extra_communication_for_fedtrip(self, histories):
        c_trip = histories["fedtrip"][1].comm_bytes()[-1]
        c_avg = histories["fedavg"][1].comm_bytes()[-1]
        assert c_trip == pytest.approx(c_avg)


class TestHeterogeneityResponse:
    def test_orthogonal_partition_trains(self):
        data = build_federated_data(
            "mini_mnist", n_clients=10, partition="orthogonal", n_clusters=5, seed=0
        )
        cfg = FLConfig(rounds=10, n_clients=10, clients_per_round=4,
                       batch_size=50, lr=0.05, seed=0)
        sim = Simulation(data, build_strategy("fedtrip", model="mlp"), cfg, model_name="mlp")
        hist = sim.run()
        assert hist.best_accuracy() > 25.0
        sim.close()

    def test_skew_hurts_fedavg(self):
        """Dir-0.1 should converge slower than IID for plain FedAvg."""
        cfg = FLConfig(rounds=10, n_clients=10, clients_per_round=4,
                       batch_size=50, lr=0.05, seed=0)
        accs = {}
        for kind, kwargs in (("iid", {}), ("dirichlet", {"alpha": 0.1})):
            data = build_federated_data("mini_mnist", n_clients=10, partition=kind,
                                        seed=0, **kwargs)
            sim = Simulation(data, build_strategy("fedavg"), cfg, model_name="mlp")
            accs[kind] = sim.run().final_accuracy_stats(last_k=3)["mean"]
            sim.close()
        assert accs["iid"] > accs["dirichlet"]


class TestLocalEpochs:
    def test_more_epochs_faster_early_accuracy(self, mini_data):
        """Table VII: larger aggregation intervals raise early-round accuracy."""
        accs = {}
        for epochs in (1, 5):
            cfg = FLConfig(rounds=4, n_clients=10, clients_per_round=4,
                           batch_size=50, lr=0.05, local_epochs=epochs, seed=0)
            sim = Simulation(mini_data, build_strategy("fedtrip", model="mlp"),
                             cfg, model_name="mlp")
            accs[epochs] = sim.run().best_accuracy()
            sim.close()
        assert accs[5] > accs[1]


class TestScalability:
    def test_4_of_50_runs(self):
        """The Table VI participation regime at mini scale."""
        data = build_federated_data("mini_mnist", n_clients=50, partition="dirichlet",
                                    alpha=0.5, seed=0, samples_per_client=80)
        cfg = FLConfig(rounds=6, n_clients=50, clients_per_round=4,
                       batch_size=40, lr=0.05, seed=0)
        sim = Simulation(data, build_strategy("fedtrip", model="mlp"), cfg, model_name="mlp")
        hist = sim.run()
        assert hist.best_accuracy() > 25.0
        sim.close()
