"""System-level wall-clock model and update compression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import FedAvg
from repro.fl import (
    CompressedExchange,
    DeviceProfile,
    FLConfig,
    NETWORK_PRESETS,
    QuantizationCompressor,
    Simulation,
    SystemModel,
    TopKCompressor,
)
from repro.fl.types import ClientUpdate


class TestDeviceProfile:
    def test_compute_time(self):
        p = DeviceProfile(flops_per_second=1e9, bandwidth_bps=1e6)
        assert p.compute_time(2e9) == pytest.approx(2.0)

    def test_transfer_time_includes_latency(self):
        p = DeviceProfile(flops_per_second=1e9, bandwidth_bps=8e6, latency_s=0.1)
        assert p.transfer_time(1e6) == pytest.approx(1.0 + 0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile(flops_per_second=0, bandwidth_bps=1e6)

    def test_presets_exist(self):
        assert {"wifi", "4g", "iot"} <= set(NETWORK_PRESETS)
        assert NETWORK_PRESETS["wifi"].bandwidth_bps > NETWORK_PRESETS["iot"].bandwidth_bps


def _upd(cid, flops, comm):
    return ClientUpdate(cid, [np.zeros(2, dtype=np.float32)], 10, 0.0,
                        flops=flops, comm_bytes=comm)


class TestSystemModel:
    def test_straggler_sets_pace(self):
        model = SystemModel("wifi", n_clients=3)
        # Make client 2 much slower.
        model.profiles[2] = DeviceProfile(flops_per_second=1e6, bandwidth_bps=50e6)
        model.observe([_upd(0, 1e9, 1e6), _upd(2, 1e9, 1e6)], None)
        rt = model.round_times[0]
        assert rt.straggler == 2
        assert rt.total_s > 100  # 1e9 flops at 1e6 flops/s

    def test_heterogeneity_spreads_speeds(self):
        model = SystemModel("4g", n_clients=20, heterogeneity=10.0, seed=0)
        speeds = [p.flops_per_second for p in model.profiles]
        assert max(speeds) / min(speeds) > 2.0

    def test_heterogeneity_one_uniform(self):
        model = SystemModel("4g", n_clients=5, heterogeneity=1.0)
        speeds = {p.flops_per_second for p in model.profiles}
        assert len(speeds) == 1

    def test_attach_to_simulation(self, tiny_data, small_config):
        sim = Simulation(tiny_data, FedAvg(), small_config, model_name="mlp")
        sysmodel = SystemModel("wifi", n_clients=small_config.n_clients).attach(sim)
        hist = sim.run()
        assert len(sysmodel.round_times) == small_config.rounds
        s = sysmodel.summary()
        assert s["total_seconds"] > 0
        assert 0 <= s["comm_fraction"] <= 1
        t = sysmodel.time_to_accuracy(hist, 40.0)
        if t is not None:
            assert 0 < t <= sysmodel.total_seconds()
        sim.close()

    def test_iot_slower_than_wifi(self, tiny_data, small_config):
        totals = {}
        for preset in ("wifi", "iot"):
            sim = Simulation(tiny_data, FedAvg(), small_config, model_name="mlp")
            sm = SystemModel(preset, n_clients=small_config.n_clients).attach(sim)
            sim.run()
            totals[preset] = sm.total_seconds()
            sim.close()
        assert totals["iot"] > totals["wifi"]

    def test_profile_count_validation(self):
        with pytest.raises(ValueError):
            SystemModel([NETWORK_PRESETS["wifi"]] * 2, n_clients=3)

    def test_summary_requires_rounds(self):
        with pytest.raises(ValueError):
            SystemModel("wifi", n_clients=2).summary()


class TestQuantization:
    def test_roundtrip_accuracy(self, rng):
        tree = [rng.standard_normal((20, 10)).astype(np.float32) * 0.01]
        comp = QuantizationCompressor(bits=8, seed=0)
        payload, nbytes = comp.encode(tree)
        back = comp.decode(payload, tree)
        err = np.abs(back[0] - tree[0]).max()
        step = 2 * payload["scale"] / comp.levels
        assert err <= step + 1e-6  # stochastic rounding: within one step
        assert nbytes < tree[0].nbytes  # actually compresses float32

    def test_unbiasedness(self, rng):
        """Stochastic rounding: mean of many encodings approaches the input."""
        tree = [np.full((1, 100), 0.37, dtype=np.float32)]
        comp = QuantizationCompressor(bits=2, seed=1)
        acc = np.zeros(100)
        n = 400
        for _ in range(n):
            payload, _ = comp.encode(tree)
            acc += comp.decode(payload, tree)[0][0]
        np.testing.assert_allclose(acc / n, 0.37, atol=0.02)

    def test_zero_tree(self):
        tree = [np.zeros((3, 3), dtype=np.float32)]
        comp = QuantizationCompressor(bits=4)
        payload, _ = comp.encode(tree)
        np.testing.assert_array_equal(comp.decode(payload, tree)[0], 0.0)

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            QuantizationCompressor(bits=0)


class TestTopK:
    def test_keeps_largest(self):
        tree = [np.array([[0.1, -5.0, 0.2, 3.0]], dtype=np.float32)]
        comp = TopKCompressor(fraction=0.5)
        payload, nbytes = comp.encode(tree)
        back = comp.decode(payload, tree)[0]
        np.testing.assert_allclose(back, [[0.0, -5.0, 0.0, 3.0]])
        assert nbytes == 2 * 8

    def test_fraction_one_lossless(self, rng):
        tree = [rng.standard_normal((4, 4)).astype(np.float32)]
        comp = TopKCompressor(fraction=1.0)
        payload, _ = comp.encode(tree)
        np.testing.assert_allclose(comp.decode(payload, tree)[0], tree[0], atol=1e-7)

    def test_validation(self):
        with pytest.raises(ValueError):
            TopKCompressor(fraction=0.0)

    def test_compressed_exchange(self, rng):
        tree = [rng.standard_normal((10, 10)).astype(np.float32)]
        ex = CompressedExchange(TopKCompressor(fraction=0.2))
        back, nbytes = ex.apply(tree)
        assert (back[0] != 0).sum() == 20
        assert nbytes == 20 * 8
