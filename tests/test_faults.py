"""The fault-tolerance layer: deterministic injectors, the engine failure
policy (retry/timeout/quorum), atomic persistence, crash-safe resume, and
the process backend's dead-worker detection."""

from __future__ import annotations

import math
import os
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import ExperimentSpec, run_experiment
from repro.api.callbacks import Callback, Checkpointer
from repro.api.engine import Engine
from repro.api.registry import build_mode
from repro.fl.faults import (
    CrashFault,
    FaultInjector,
    TaskFailure,
    available_faults,
    build_fault,
    register_fault,
    _FAULTS,
)
from repro.io import persistence
from repro.io.persistence import (
    load_engine_snapshot,
    load_history,
    save_engine_snapshot,
    save_history,
)

TINY = dict(dataset="tiny", model="mlp", method="fedavg", n_clients=4,
            clients_per_round=2, rounds=3, batch_size=20, lr=0.05)


def _nan_none(x):
    """NaN compares unequal to itself; map it to None so an all-fail
    round's mean_train_loss=NaN doesn't break signature equality."""
    return None if isinstance(x, float) and math.isnan(x) else x


def _sig(history, virtual=False):
    """Round-record signature for byte-identity comparisons: everything
    behaviour-bearing including the fault fields; wall/phase timings are
    excluded (they measure the host, not the algorithm) and virtual time
    only on request (sync/semisync price rounds differently by design)."""
    return [
        (r.round_idx, tuple(r.selected), r.test_accuracy, r.test_loss,
         _nan_none(r.mean_train_loss), r.cumulative_flops, r.cumulative_comm_bytes,
         tuple(r.dropped_clients), tuple(r.screened_clients),
         tuple(r.failed_clients), tuple(r.retried_clients),
         r.skip_reason, r.round_skipped)
        + ((r.virtual_time_s,) if virtual else ())
        for r in history.records
    ]


# ---------------------------------------------------------------------------
# registry + construction errors
# ---------------------------------------------------------------------------

class TestFaultRegistry:
    def test_builtins_registered(self):
        assert available_faults() == [
            "corrupt", "crash", "crash_mid_train", "straggler", "worker_death",
        ]

    def test_unknown_name_raises_listing_alternatives(self):
        with pytest.raises(ValueError, match="unknown fault"):
            build_fault("meteor_strike", rate=0.5, seed=0)

    def test_bad_kwarg_raises_value_error(self):
        with pytest.raises(ValueError, match="bad arguments"):
            build_fault("crash", rate=0.5, seed=0, bogus=1)

    def test_rate_out_of_range(self):
        for rate in (-0.1, 1.1):
            with pytest.raises(ValueError, match="rate"):
                build_fault("crash", rate=rate, seed=0)

    def test_corrupt_mode_validated(self):
        with pytest.raises(ValueError, match="corrupt mode"):
            build_fault("corrupt", rate=0.5, seed=0, mode="scramble")

    def test_straggler_delay_bounds_validated(self):
        with pytest.raises(ValueError, match="min_delay_s"):
            build_fault("straggler", rate=0.5, seed=0,
                        min_delay_s=5.0, max_delay_s=1.0)

    def test_third_party_fault_plugs_in(self):
        class NoopFault(FaultInjector):
            name = "noop"

        register_fault("noop", NoopFault)
        try:
            inj = build_fault("noop", rate=0.5, seed=3)
            assert isinstance(inj, NoopFault)
        finally:
            del _FAULTS["noop"]


class TestSpecValidation:
    def test_rate_without_fault_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(**TINY, fault_rate=0.5)

    def test_fault_without_rate_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(**TINY, fault="crash")

    def test_fault_kwargs_without_fault_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(**TINY, fault_kwargs={"mode": "nan"})

    def test_timeout_requires_fault(self):
        with pytest.raises(ValueError, match="task_timeout_s"):
            ExperimentSpec(**TINY, task_timeout_s=5.0)

    def test_quorum_fraction_range(self):
        with pytest.raises(ValueError):
            ExperimentSpec(**TINY, quorum_fraction=1.5)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(**TINY, task_retries=-1)

    def test_build_fault_injector(self):
        spec = ExperimentSpec(**TINY, fault="corrupt", fault_rate=0.25,
                              fault_kwargs={"mode": "truncate"}, seed=9)
        inj = spec.build_fault_injector()
        assert inj.name == "corrupt" and inj.mode == "truncate"
        assert inj.rate == 0.25 and inj.seed == 9
        assert ExperimentSpec(**TINY).build_fault_injector() is None


# ---------------------------------------------------------------------------
# injector determinism
# ---------------------------------------------------------------------------

class TestInjectorDeterminism:
    def test_fires_is_stateless_and_replayable(self):
        a = build_fault("crash", rate=0.3, seed=7)
        b = build_fault("crash", rate=0.3, seed=7)
        draws = [(c, r, t) for c in range(5) for r in range(5) for t in range(2)]
        outcomes = [a.fires(*d) for d in draws]
        # replay on a fresh instance and on the same instance in a
        # different order — fires() must be a pure function of the key
        assert outcomes == [b.fires(*d) for d in draws]
        assert outcomes == [a.fires(*d) for d in reversed(draws)][::-1]
        assert any(outcomes) and not all(outcomes)

    def test_rate_extremes(self):
        never = build_fault("crash", rate=0.0, seed=1)
        always = build_fault("crash", rate=1.0, seed=1)
        assert not any(never.fires(c, 0) for c in range(20))
        assert all(always.fires(c, 0) for c in range(20))

    def test_attempt_rekeys_the_coin(self):
        # A retried task re-draws: over enough attempts both outcomes occur,
        # which is what makes bounded retry recover at sub-certain rates.
        inj = build_fault("crash", rate=0.5, seed=3)
        outcomes = {inj.fires(2, 4, t) for t in range(32)}
        assert outcomes == {True, False}

    def test_straggler_delay_deterministic_and_bounded(self):
        kwargs = dict(rate=1.0, seed=5, min_delay_s=2.0, max_delay_s=3.0)
        inj = build_fault("straggler", **kwargs)
        task = SimpleNamespace(client_id=1, round_idx=2, attempt=0)
        d = inj.delay_s(task)
        assert 2.0 <= d <= 3.0
        assert build_fault("straggler", **kwargs).delay_s(task) == d
        retry = SimpleNamespace(client_id=1, round_idx=2, attempt=1)
        assert inj.delay_s(retry) != d

    def test_pickle_round_trip_preserves_coins(self):
        import pickle

        inj = build_fault("corrupt", rate=0.4, seed=11, mode="truncate")
        back = pickle.loads(pickle.dumps(inj))
        assert [back.fires(c, r) for c in range(6) for r in range(6)] == \
               [inj.fires(c, r) for c in range(6) for r in range(6)]


# ---------------------------------------------------------------------------
# failure policy: end-to-end runs
# ---------------------------------------------------------------------------

class TestFailurePolicyRuns:
    @pytest.mark.parametrize(
        "fault", ["crash", "crash_mid_train", "corrupt", "straggler"])
    def test_each_kind_runs_and_replays(self, fault):
        args = {**TINY, "rounds": 2, "fault": fault, "fault_rate": 0.5,
                "task_retries": 1}
        h1 = run_experiment(ExperimentSpec(**args))
        h2 = run_experiment(ExperimentSpec(**args))
        assert _sig(h1, virtual=True) == _sig(h2, virtual=True)
        assert len(h1) == 2

    def test_crash_failures_recorded_and_retries_recover(self):
        args = {**TINY, "fault": "crash", "fault_rate": 0.5}
        bare = run_experiment(ExperimentSpec(**args))
        retried = run_experiment(ExperimentSpec(**args, task_retries=2))
        assert bare.failed_client_ids(), "rate 0.5 over 6 tasks should fail some"
        assert bare.retried_client_ids() == []  # no budget -> no dispatches
        assert retried.retried_client_ids()
        # a re-drawn coin recovers some attempts: strictly fewer terminal
        # failures than the no-retry run at the same seed
        assert len(retried.failed_client_ids()) < len(bare.failed_client_ids())

    def test_corrupt_bypasses_finite_screen(self):
        """A corrupted payload is a *task failure*, decided by the policy —
        it must never reach the aggregator's finite check (dropped_clients
        is the legacy screen's ledger and stays empty)."""
        hist = run_experiment(ExperimentSpec(
            **{**TINY, "fault": "corrupt", "fault_rate": 0.7}))
        assert hist.failed_client_ids()
        assert all(r.dropped_clients == [] for r in hist.records)
        # every surviving aggregate stayed finite
        assert all(np.isfinite(r.test_loss) for r in hist.records)

    def test_straggler_stretches_virtual_clock(self):
        base = {**TINY, "device_profile": "iot"}
        clean = run_experiment(ExperimentSpec(**base))
        slow = run_experiment(ExperimentSpec(
            **base, fault="straggler", fault_rate=1.0,
            fault_kwargs={"min_delay_s": 50.0, "max_delay_s": 60.0}))
        assert slow.records[-1].virtual_time_s > \
            clean.records[-1].virtual_time_s + 100.0
        # honest training: stragglers still aggregate, nothing fails
        assert slow.failed_client_ids() == []

    def test_timeout_discards_late_reports(self):
        args = {**TINY, "fault": "straggler", "fault_rate": 0.5,
                "fault_kwargs": {"min_delay_s": 20.0, "max_delay_s": 30.0},
                "task_timeout_s": 5.0}
        hist = run_experiment(ExperimentSpec(**args))
        assert hist.failed_client_ids(), "every fired delay exceeds the deadline"
        # timeouts are retryable: with budget, re-drawn attempts recover
        again = run_experiment(ExperimentSpec(**args, task_retries=2))
        assert again.retried_client_ids()
        assert len(again.failed_client_ids()) < len(hist.failed_client_ids())

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_nonfinite_loss_is_policy_failure_not_aggregator_drop(self):
        """Divergent training (giant lr) produces non-finite losses.  The
        legacy path screens them at the aggregator (dropped_clients); with
        the failure policy active the task itself fails, non-retryably."""
        diverge = {**TINY, "rounds": 2, "lr": 1e9}
        legacy = run_experiment(ExperimentSpec(**diverge))
        assert legacy.dropped_client_ids(), "lr=1e9 should diverge"
        assert legacy.failed_client_ids() == []
        policy = run_experiment(ExperimentSpec(**diverge, task_retries=1))
        assert policy.failed_client_ids()
        assert policy.dropped_client_ids() == []
        # non-retryable: the retry budget was not spent re-reproducing NaN
        assert policy.retried_client_ids() == []


# ---------------------------------------------------------------------------
# quorum
# ---------------------------------------------------------------------------

class TestQuorum:
    @given(
        q=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        k=st.integers(1, 8),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_skip_reason_matches_ceil_rule(self, q, k, data):
        """skipped iff successes < ceil(q * K); zero successes always skip."""
        s = data.draw(st.integers(0, k))
        policy = SimpleNamespace(_policy_active=True, quorum_fraction=q)
        reason = Engine._quorum_skip_reason(
            policy, list(range(k)), [object()] * s)
        if s == 0:
            assert reason == "no_updates"
        elif s < math.ceil(q * k):
            assert reason == "quorum"
        else:
            assert reason is None

    def test_policy_inactive_never_skips(self):
        inactive = SimpleNamespace(_policy_active=False, quorum_fraction=0.9)
        assert Engine._quorum_skip_reason(inactive, [0, 1], []) is None

    def test_full_quorum_skips_on_any_failure(self):
        hist = run_experiment(ExperimentSpec(
            **{**TINY, "fault": "crash", "fault_rate": 0.5,
               "quorum_fraction": 1.0}))
        skipped = [r for r in hist.records if r.skip_reason is not None]
        assert skipped, "rate 0.5 should break unanimity in some round"
        for r in skipped:
            assert r.round_skipped
            assert r.skip_reason in ("quorum", "no_updates")
            assert np.isnan(r.mean_train_loss) or r.skip_reason == "quorum"

    def test_all_fail_round_skips_with_no_updates(self):
        hist = run_experiment(ExperimentSpec(
            **{**TINY, "fault": "crash", "fault_rate": 1.0}))
        for r in hist.records:
            assert r.skip_reason == "no_updates" and r.round_skipped
            assert sorted(r.selected) == r.failed_clients
            assert np.isnan(r.mean_train_loss)
        # the model never moved: every evaluation scores identical weights
        assert len({r.test_accuracy for r in hist.records}) == 1
        assert hist.skipped_rounds() == len(hist)

    def test_retry_exhaustion_spends_full_budget_then_fails(self):
        retries = 2
        hist = run_experiment(ExperimentSpec(
            **{**TINY, "rounds": 2, "fault": "crash", "fault_rate": 1.0,
               "task_retries": retries}))
        for r in hist.records:
            # every attempt fires at rate 1.0: K initial dispatches spawn
            # K retries per wave until the budget is gone, then all fail
            assert r.failed_clients == sorted(r.selected)
            assert len(r.retried_clients) == retries * len(r.selected)
            assert r.skip_reason == "no_updates"


# ---------------------------------------------------------------------------
# cross-executor x cross-mode byte-identity with an active injector
# ---------------------------------------------------------------------------

class TestFaultByteIdentityGrid:
    def test_grid_with_active_injector(self):
        """tests/test_params.py's grid, with the failure policy live: a
        fixed seed must land identical failures, retries and aggregates on
        every backend.  References are per-mode (async is a different
        algorithm; sync/semisync retry bookkeeping orders by wave vs by
        arrival)."""
        base = {**TINY, "fault": "crash", "fault_rate": 0.3, "task_retries": 1}
        references = {}
        for executor in ("serial", "threaded", "process"):
            for mode in ("sync", "semisync", "async"):
                spec = ExperimentSpec(**{
                    **base, "executor": executor, "mode": mode,
                    "n_workers": 1 if executor == "serial" else 2,
                    **({"device_profile": "iot"} if mode == "semisync" else {}),
                })
                sig = _sig(run_experiment(spec))
                if mode not in references:
                    references[mode] = sig
                else:
                    assert sig == references[mode], (
                        f"{executor}/{mode} diverged under fault injection")
        # the injector actually did something in the barrier cells
        assert any(rec[9] or rec[10] for rec in references["sync"])


class TestFaultOptionSmoke:
    def test_suite_fault_options_run(self, fault_options):
        """The cell the CI fault rerun exercises: tier-1 runs once more
        with --fault crash --fault-rate 0.2 --task-retries 2, and this
        test (clean-path by default) picks the options up."""
        fault, rate, retries = fault_options
        if fault is not None and rate <= 0.0:
            rate = 0.2
        hist = run_experiment(ExperimentSpec(
            **TINY, fault=fault, fault_rate=rate if fault else 0.0,
            task_retries=retries))
        assert len(hist) == TINY["rounds"]
        if fault is None:
            assert hist.failed_client_ids() == []
            assert hist.retried_client_ids() == []


# ---------------------------------------------------------------------------
# atomic persistence
# ---------------------------------------------------------------------------

class TestAtomicPersistence:
    def test_kill_between_write_and_publish_leaves_old_file(
            self, tmp_path, monkeypatch):
        """A writer killed after writing the temp file but before the
        rename must leave the previous complete artifact untouched and no
        droppings behind."""
        path = str(tmp_path / "latest.ckpt")
        save_engine_snapshot(path, {"format": 1, "round_idx": 3})

        def killed(tmp, final):
            raise KeyboardInterrupt

        monkeypatch.setattr(persistence, "_atomic_publish", killed)
        with pytest.raises(KeyboardInterrupt):
            save_engine_snapshot(path, {"format": 1, "round_idx": 4})
        monkeypatch.undo()
        assert load_engine_snapshot(path)["round_idx"] == 3
        assert os.listdir(tmp_path) == ["latest.ckpt"]

    def test_history_save_is_atomic(self, tmp_path, monkeypatch):
        from repro.fl.history import History
        from repro.fl.types import RoundRecord

        hist = History()
        hist.append(RoundRecord(0, [1], 50.0, 0.5, 0.4, 1e6, 1e3, 0.1))
        path = str(tmp_path / "h.json")
        save_history(hist, path)
        monkeypatch.setattr(
            persistence, "_atomic_publish",
            lambda *a: (_ for _ in ()).throw(RuntimeError("killed")))
        hist.append(RoundRecord(1, [2], 60.0, 0.4, 0.3, 2e6, 2e3, 0.1))
        with pytest.raises(RuntimeError):
            save_history(hist, path)
        monkeypatch.undo()
        assert len(load_history(path)) == 1
        assert not any(n.endswith(".tmp") for n in os.listdir(tmp_path))

    def test_checkpoint_save_is_atomic(self, tmp_path, monkeypatch):
        from repro.models import build_model

        model = build_model("mlp", (1, 8, 8), 4)
        path = str(tmp_path / "ckpt")
        out = persistence.save_checkpoint(model, path, {"round": 1})
        assert out.endswith(".npz") and os.path.exists(out)
        monkeypatch.setattr(
            np, "savez",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("killed")))
        with pytest.raises(RuntimeError):
            persistence.save_checkpoint(model, path, {"round": 2})
        monkeypatch.undo()
        back = build_model("mlp", (1, 8, 8), 4)
        assert persistence.load_checkpoint(back, out) == {"round": 1}
        assert sorted(os.listdir(tmp_path)) == ["ckpt.npz"]

    def test_history_fault_fields_round_trip(self, tmp_path):
        hist = run_experiment(ExperimentSpec(
            **{**TINY, "rounds": 2, "fault": "crash", "fault_rate": 0.5,
               "task_retries": 1, "quorum_fraction": 1.0}))
        path = str(tmp_path / "h.json")
        save_history(hist, path)
        assert _sig(load_history(path)) == _sig(hist)


# ---------------------------------------------------------------------------
# crash-safe resume
# ---------------------------------------------------------------------------

class _KillAfterRound(Callback):
    """Simulates the process dying right after round N's checkpoint."""

    def __init__(self, rounds: int) -> None:
        self.rounds = rounds

    def on_round_end(self, engine, record) -> None:
        if record.round_idx + 1 >= self.rounds:
            raise KeyboardInterrupt


class TestCrashSafeResume:
    RESUME = {**TINY, "rounds": 5, "fault": "crash", "fault_rate": 0.3,
              "task_retries": 1}

    @pytest.mark.parametrize("executor,workers",
                             [("serial", 1), ("threaded", 2), ("process", 2)])
    def test_kill_and_resume_is_byte_identical(self, tmp_path, executor, workers):
        args = {**self.RESUME, "executor": executor, "n_workers": workers}
        reference = _sig(run_experiment(ExperimentSpec(**args)), virtual=True)
        ckpt = Checkpointer(str(tmp_path), every=1, engine_state=True)
        with pytest.raises(KeyboardInterrupt):
            run_experiment(ExperimentSpec(**args),
                           callbacks=[ckpt, _KillAfterRound(2)])
        resumed = run_experiment(ExperimentSpec(**args),
                                 resume_from=ckpt.snapshot_path)
        assert _sig(resumed, virtual=True) == reference
        assert len(resumed) == self.RESUME["rounds"]

    def test_resume_rejects_different_experiment_cell(self, tmp_path):
        ckpt = Checkpointer(str(tmp_path), every=1, engine_state=True)
        run_experiment(ExperimentSpec(**{**TINY, "rounds": 2}),
                       callbacks=[ckpt])
        other = ExperimentSpec(**{**TINY, "rounds": 2, "lr": 0.01})
        with pytest.raises(ValueError, match="experiment cell"):
            run_experiment(other, resume_from=ckpt.snapshot_path)

    def test_restore_requires_fresh_engine(self):
        spec = ExperimentSpec(**{**TINY, "rounds": 2})
        engine = build_mode(spec.mode, spec=spec, data=spec.build_data())
        try:
            engine.run()
            with pytest.raises(ValueError, match="freshly built"):
                engine.restore(engine.snapshot())
        finally:
            engine.close()

    def test_unknown_snapshot_format_rejected(self):
        spec = ExperimentSpec(**{**TINY, "rounds": 1})
        engine = build_mode(spec.mode, spec=spec, data=spec.build_data())
        try:
            with pytest.raises(ValueError, match="snapshot format"):
                engine.restore({"format": 999})
        finally:
            engine.close()

    def test_event_driven_modes_refuse_snapshot(self):
        spec = ExperimentSpec(**{**TINY, "rounds": 1, "mode": "semisync",
                                 "device_profile": "iot"})
        engine = build_mode(spec.mode, spec=spec, data=spec.build_data())
        try:
            with pytest.raises(ValueError, match="sync"):
                engine.snapshot()
            with pytest.raises(ValueError, match="sync"):
                engine.restore({"format": 1})
        finally:
            engine.close()

    def test_snapshot_excludes_nothing_behaviour_bearing(self, tmp_path):
        """Resuming mid-run twice from the same snapshot is idempotent —
        the snapshot alone (plus the spec) determines the continuation."""
        args = {**self.RESUME}
        ckpt = Checkpointer(str(tmp_path), every=1, engine_state=True)
        with pytest.raises(KeyboardInterrupt):
            run_experiment(ExperimentSpec(**args),
                           callbacks=[ckpt, _KillAfterRound(3)])
        first = _sig(run_experiment(ExperimentSpec(**args),
                                    resume_from=ckpt.snapshot_path),
                     virtual=True)
        second = _sig(run_experiment(ExperimentSpec(**args),
                                     resume_from=ckpt.snapshot_path),
                      virtual=True)
        assert first == second


# ---------------------------------------------------------------------------
# process worker death
# ---------------------------------------------------------------------------

class TestProcessWorkerDeath:
    def test_dead_worker_surfaces_failure_and_matches_serial(self):
        """``worker_death`` on the process backend really kills pool
        workers; the executor must detect the deaths (no hang), let the
        pool respawn, and synthesize failures that keep the History
        byte-identical to the serial backend's synthesized path."""
        base = {**TINY, "rounds": 2, "fault": "worker_death",
                "fault_rate": 0.4, "task_retries": 1}
        reference = run_experiment(ExperimentSpec(**base))
        assert reference.failed_client_ids() or reference.retried_client_ids(), \
            "rate 0.4 over 2 rounds should fire at least once"
        spec = ExperimentSpec(**{**base, "executor": "process", "n_workers": 2})
        engine = build_mode(spec.mode, spec=spec, data=spec.build_data())
        try:
            # shrink the detection grace so the test stays fast; tasks here
            # take milliseconds, so two seconds of silence is unambiguous
            engine.executor._death_grace_s = 2.0
            hist = engine.run()
        finally:
            engine.close()
        assert _sig(hist, virtual=True) == _sig(reference, virtual=True)
