"""Shared fixtures and the numerical gradient-check helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_federated_data
from repro.fl import FLConfig


def pytest_addoption(parser):
    parser.addoption(
        "--executor",
        default="serial",
        choices=["auto", "serial", "threaded", "process", "network"],
        help="execution backend the backend-sensitive smoke tests run on "
             "(CI runs the suite once more with --executor process and "
             "again with --executor network --net-workers 2)",
    )
    parser.addoption(
        "--net-workers",
        type=int,
        default=2,
        help="loopback worker-subprocess count for --executor network",
    )
    parser.addoption(
        "--mode",
        default="sync",
        choices=["sync", "semisync", "async"],
        help="server mode the mode-sensitive smoke tests run on "
             "(CI runs the suite once more with --mode semisync "
             "--device-profile iot)",
    )
    parser.addoption(
        "--device-profile",
        default=None,
        choices=["wifi", "4g", "iot"],
        help="device/network preset for the mode-sensitive smoke tests",
    )
    parser.addoption(
        "--aggregator",
        default="mean",
        choices=[
            "mean", "coordinate_median", "trimmed_mean", "norm_clip",
            "norm_screen", "krum", "multi_krum",
        ],
        help="server aggregation rule the aggregation-sensitive smoke tests "
             "run with (CI runs the suite once more with "
             "--aggregator trimmed_mean)",
    )
    parser.addoption(
        "--agg-block-size",
        type=int,
        default=None,
        help="run the whole suite with this streaming aggregation block "
             "size as the process-wide default (CI reruns tier-1 with "
             "--agg-block-size 3 to keep the chunked path continuously "
             "exercised; results are byte-identical to dense, so every "
             "test must still pass)",
    )
    parser.addoption(
        "--fault",
        default=None,
        choices=["crash", "crash_mid_train", "corrupt", "straggler", "worker_death"],
        help="deterministic fault injector the fault-sensitive smoke tests "
             "run with (CI reruns tier-1 with --fault crash --fault-rate "
             "0.2 --task-retries 2 to keep the failure policy continuously "
             "exercised)",
    )
    parser.addoption(
        "--fault-rate",
        type=float,
        default=0.0,
        help="per-(client, round, attempt) fire probability for --fault",
    )
    parser.addoption(
        "--task-retries",
        type=int,
        default=0,
        help="retry budget the fault-sensitive smoke tests run with",
    )
    parser.addoption(
        "--run-tier2",
        action="store_true",
        default=False,
        help="also run tests marked tier2 (slow resource-ceiling checks, "
             "e.g. the population peak-RSS regression); skipped by default "
             "so tier-1 stays fast",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "tier2: slow resource-ceiling regression tests, run with --run-tier2",
    )
    config.addinivalue_line("markers", "slow: long-running end-to-end test")
    block = config.getoption("--agg-block-size")
    if block is not None:
        from repro.fl.aggregation import set_default_aggregation_block_size

        set_default_aggregation_block_size(block)


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-tier2"):
        return
    skip = pytest.mark.skip(reason="tier-2 test; enable with --run-tier2")
    for item in items:
        if "tier2" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def executor_name(request):
    """The backend selected with ``--executor`` (default: serial)."""
    return request.config.getoption("--executor")


@pytest.fixture(scope="session")
def net_workers(request):
    """Loopback fleet size selected with ``--net-workers`` (default: 2)."""
    return request.config.getoption("--net-workers")


@pytest.fixture(scope="session")
def mode_name(request):
    """The server mode selected with ``--mode`` (default: sync)."""
    return request.config.getoption("--mode")


@pytest.fixture(scope="session")
def device_profile_name(request):
    """The preset selected with ``--device-profile`` (default: None)."""
    return request.config.getoption("--device-profile")


@pytest.fixture(scope="session")
def aggregator_name(request):
    """The aggregation rule selected with ``--aggregator`` (default: mean)."""
    return request.config.getoption("--aggregator")


@pytest.fixture(scope="session")
def fault_options(request):
    """The (fault, fault_rate, task_retries) triple selected on the CLI.

    ``fault`` defaults to None, so the fault-sensitive smoke tests run the
    clean path unless CI opts into an injector.
    """
    return (
        request.config.getoption("--fault"),
        request.config.getoption("--fault-rate"),
        request.config.getoption("--task-retries"),
    )


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_data():
    """A 6-client Dirichlet-partitioned tiny dataset shared across tests."""
    return build_federated_data("tiny", n_clients=6, partition="dirichlet", alpha=0.5, seed=0)


@pytest.fixture(scope="session")
def tiny_iid_data():
    return build_federated_data("tiny", n_clients=6, partition="iid", seed=0)


@pytest.fixture
def small_config():
    return FLConfig(
        rounds=3, n_clients=6, clients_per_round=3, batch_size=20, lr=0.05, seed=1
    )


# ---------------------------------------------------------------------------
# Numerical gradient checking for layers (float32 tolerances).
# ---------------------------------------------------------------------------

def numeric_grad_scalar(f, x: np.ndarray, eps: float = 1e-2, max_checks: int = 40, seed: int = 0):
    """Central-difference gradient of scalar f at sampled entries of x.

    Returns (indices, numeric_values) for up to ``max_checks`` randomly
    sampled flat indices — checking every entry of a conv kernel would be
    O(params) forward passes for no extra signal.
    """
    rng = np.random.default_rng(seed)
    flat = x.reshape(-1)
    n = flat.size
    idx = rng.choice(n, size=min(max_checks, n), replace=False)
    grads = np.empty(idx.size, dtype=np.float64)
    for j, i in enumerate(idx):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        grads[j] = (fp - fm) / (2 * eps)
    return idx, grads


def check_layer_gradients(layer, x: np.ndarray, atol: float = 2e-2, rtol: float = 8e-2, seed: int = 0):
    """Verify a layer's analytic backward against central differences.

    Strategy: define scalar loss L = sum(forward(x) * R) for a fixed random
    R; then dL/dx = backward(R) and dL/dw accumulates in parameter grads.
    Checks the input gradient and every parameter's gradient on sampled
    entries.  Tolerances are sized for float32 arithmetic.
    """
    rng = np.random.default_rng(seed)
    layer.train()
    out = layer.forward(x)
    r = rng.standard_normal(out.shape).astype(x.dtype)

    def loss() -> float:
        return float(np.sum(layer.forward(x).astype(np.float64) * r))

    # Analytic gradients.
    layer.zero_grad()
    layer.forward(x)
    dx = layer.backward(r)

    def compare(name, analytic, target_array, f):
        idx, num = numeric_grad_scalar(f, target_array, seed=seed + hash(name) % 1000)
        ana = analytic.reshape(-1)[idx].astype(np.float64)
        denom = np.maximum(np.abs(num), np.abs(ana))
        err = np.abs(num - ana)
        ok = (err <= atol) | (err <= rtol * denom)
        assert ok.all(), (
            f"{name}: gradient mismatch; worst abs err "
            f"{err.max():.4g} at analytic={ana[err.argmax()]:.4g} "
            f"numeric={num[err.argmax()]:.4g}"
        )

    compare("input", dx, x, loss)
    for pname, p in layer.named_parameters():
        compare(f"param:{pname}", p.grad, p.data, loss)
