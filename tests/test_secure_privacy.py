"""Secure aggregation, differential privacy, and the strategy wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FLConfig, Simulation, build_strategy
from repro.fl import (
    CompressedUploadWrapper,
    GaussianMechanism,
    PairwiseMasker,
    PrivacyAccountant,
    PrivateAggregationWrapper,
    QuantizationCompressor,
    TopKCompressor,
    secure_sum,
)
from repro.utils.vectorize import tree_sq_norm


def _tree(rng, scale=1.0):
    return [scale * rng.standard_normal((4, 3)).astype(np.float32),
            scale * rng.standard_normal(7).astype(np.float32)]


class TestSecureAggregation:
    def test_masks_cancel_exactly(self, rng):
        updates = {cid: _tree(rng) for cid in (0, 2, 5)}
        total, masked = secure_sum(updates, round_idx=3, seed=0, scale=10.0)
        expected = [sum(u[i] for u in updates.values()) for i in range(2)]
        for a, b in zip(total, expected):
            np.testing.assert_allclose(a, b, atol=1e-3)

    def test_masked_upload_hides_update(self, rng):
        updates = {0: _tree(rng), 1: _tree(rng)}
        _, masked = secure_sum(updates, seed=0, scale=100.0)
        # Masked upload is dominated by the mask, not the update.
        raw_norm = np.sqrt(tree_sq_norm(updates[0]))
        masked_norm = np.sqrt(tree_sq_norm(masked[0]))
        assert masked_norm > 10 * raw_norm

    def test_single_client_unmasked(self, rng):
        updates = {4: _tree(rng)}
        total, masked = secure_sum(updates, seed=0)
        for a, b in zip(total, updates[4]):
            np.testing.assert_allclose(a, b, atol=1e-6)

    def test_pair_masks_are_symmetric(self, rng):
        masker = PairwiseMasker(seed=0, scale=5.0)
        zero = [np.zeros((3, 3), dtype=np.float32)]
        mi = masker.mask_update(1, [1, 2], 0, zero)
        mj = masker.mask_update(2, [1, 2], 0, zero)
        np.testing.assert_allclose(mi[0], -mj[0], atol=1e-6)

    def test_round_changes_masks(self):
        masker = PairwiseMasker(seed=0)
        zero = [np.zeros(5, dtype=np.float32)]
        a = masker.mask_update(0, [0, 1], 0, zero)
        b = masker.mask_update(0, [0, 1], 1, zero)
        assert not np.allclose(a[0], b[0])

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PairwiseMasker(scale=0.0)
        with pytest.raises(ValueError):
            PairwiseMasker().mask_update(9, [0, 1], 0, _tree(rng))
        with pytest.raises(ValueError):
            PairwiseMasker().unmask_sum({}, 0)


class TestGaussianMechanism:
    def test_clip_reduces_large_norms(self, rng):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.0)
        big = _tree(rng, scale=100.0)
        clipped = mech.clip(big)
        assert np.sqrt(tree_sq_norm(clipped)) == pytest.approx(1.0, rel=1e-5)

    def test_clip_leaves_small_norms(self, rng):
        mech = GaussianMechanism(clip_norm=1e6, noise_multiplier=0.0)
        small = _tree(rng)
        clipped = mech.clip(small)
        for a, b in zip(clipped, small):
            np.testing.assert_array_equal(a, b)

    def test_noise_scale(self, rng):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=2.0, seed=0)
        zero = [np.zeros(50_000, dtype=np.float32)]
        out = mech.privatize(zero, 0, 0)
        assert np.std(out[0]) == pytest.approx(2.0, rel=0.05)

    def test_deterministic_per_round_client(self, rng):
        m1 = GaussianMechanism(1.0, 1.0, seed=3)
        m2 = GaussianMechanism(1.0, 1.0, seed=3)
        x = _tree(rng)
        np.testing.assert_array_equal(m1.privatize(x, 5, 2)[0], m2.privatize(x, 5, 2)[0])
        assert not np.allclose(m1.privatize(x, 5, 2)[0], m1.privatize(x, 6, 2)[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianMechanism(0.0, 1.0)
        with pytest.raises(ValueError):
            GaussianMechanism(1.0, -1.0)


class TestPrivacyAccountant:
    def test_epsilon_grows_with_rounds(self):
        acc = PrivacyAccountant(noise_multiplier=1.0, delta=1e-5)
        acc.record_round(10)
        e10 = acc.epsilon()
        acc.record_round(90)
        assert acc.epsilon() > e10

    def test_advanced_beats_basic_for_many_rounds(self):
        # Advanced composition pays an (e^eps - 1) premium per step, so it
        # only wins in the high-noise (eps_step << 1) regime it targets.
        acc = PrivacyAccountant(noise_multiplier=20.0, delta=1e-5)
        acc.record_round(1000)
        assert acc.epsilon(advanced=True) < acc.epsilon(advanced=False)

    def test_more_noise_less_epsilon(self):
        lo = PrivacyAccountant(noise_multiplier=0.5)
        hi = PrivacyAccountant(noise_multiplier=4.0)
        lo.record_round(10)
        hi.record_round(10)
        assert hi.epsilon() < lo.epsilon()

    def test_zero_rounds_zero_epsilon(self):
        assert PrivacyAccountant(1.0).epsilon() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(0.0)
        with pytest.raises(ValueError):
            PrivacyAccountant(1.0, delta=1.0)


class TestPrivateAggregationWrapper:
    def test_noiseless_clipless_matches_base(self, tiny_data, small_config):
        base_hist = None
        for wrap in (False, True):
            strat = build_strategy("fedavg")
            if wrap:
                strat = PrivateAggregationWrapper(strat, clip_norm=1e9,
                                                  noise_multiplier=0.0)
            sim = Simulation(tiny_data, strat, small_config, model_name="mlp")
            hist = sim.run()
            sim.close()
            if base_hist is None:
                base_hist = hist
            else:
                np.testing.assert_allclose(hist.accuracies(), base_hist.accuracies(),
                                           atol=1e-5)

    def test_noise_degrades_but_still_learns(self, tiny_data, small_config):
        strat = PrivateAggregationWrapper(build_strategy("fedtrip"),
                                          clip_norm=5.0, noise_multiplier=0.02)
        sim = Simulation(tiny_data, strat, small_config, model_name="mlp")
        hist = sim.run()
        assert hist.best_accuracy() > 25.0
        assert strat.accountant.steps == small_config.rounds
        assert strat.accountant.epsilon() > 0
        sim.close()

    def test_name_and_describe(self):
        strat = PrivateAggregationWrapper(build_strategy("fedtrip"), 1.0, 1.0)
        assert strat.name == "dp(fedtrip)"
        assert "privacy" in strat.describe()


class TestCompressedUploadWrapper:
    def test_quantized_fedavg_learns(self, tiny_data, small_config):
        strat = CompressedUploadWrapper(build_strategy("fedavg"),
                                        QuantizationCompressor(bits=8, seed=0))
        sim = Simulation(tiny_data, strat, small_config, model_name="mlp")
        hist = sim.run()
        assert hist.best_accuracy() > 30.0
        sim.close()

    def test_comm_bytes_reduced(self, tiny_data, small_config):
        base = Simulation(tiny_data, build_strategy("fedavg"), small_config,
                          model_name="mlp")
        h_base = base.run()
        base.close()
        strat = CompressedUploadWrapper(build_strategy("fedavg"),
                                        TopKCompressor(fraction=0.05))
        sim = Simulation(tiny_data, strat, small_config, model_name="mlp")
        h_comp = sim.run()
        sim.close()
        # Uplink shrinks ~20x; downlink unchanged -> total roughly halves.
        assert h_comp.comm_bytes()[-1] < 0.62 * h_base.comm_bytes()[-1]

    def test_fraction_one_topk_matches_base(self, tiny_data, small_config):
        strat = CompressedUploadWrapper(build_strategy("fedavg"),
                                        TopKCompressor(fraction=1.0))
        sim = Simulation(tiny_data, strat, small_config, model_name="mlp")
        h_comp = sim.run()
        sim.close()
        base = Simulation(tiny_data, build_strategy("fedavg"), small_config,
                          model_name="mlp")
        h_base = base.run()
        base.close()
        np.testing.assert_allclose(h_comp.accuracies(), h_base.accuracies(), atol=1e-4)

    def test_composes_with_fedtrip(self, tiny_data, small_config):
        strat = CompressedUploadWrapper(build_strategy("fedtrip"),
                                        QuantizationCompressor(bits=10, seed=0))
        sim = Simulation(tiny_data, strat, small_config, model_name="mlp")
        hist = sim.run()
        assert hist.best_accuracy() > 25.0
        assert strat.describe()["compression"] == "QuantizationCompressor"
        sim.close()
