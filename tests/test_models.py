"""Model zoo: architectures, adaptivity, profiling (Table III)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    available_models,
    build_alexnet,
    build_cnn,
    build_mlp,
    build_model,
    profile_model,
)


class TestBuilders:
    def test_mlp_paper_shape(self, rng):
        """Paper MLP: 2 FC layers with 100 and 10 neurons on 28x28 inputs."""
        m = build_mlp((1, 28, 28), 10, rng=rng)
        assert m.feature_dim == 100
        assert m.num_classes == 10
        # 784*100+100 + 100*10+10 = 79510  (paper rounds to 0.08M... 0.8M in
        # the table counts differently; we assert our own exact count)
        assert m.num_parameters() == 784 * 100 + 100 + 100 * 10 + 10

    def test_cnn_paper_geometry(self, rng):
        m = build_cnn((1, 28, 28), 10, rng=rng)
        out = m(rng.standard_normal((2, 1, 28, 28)).astype(np.float32))
        assert out.shape == (2, 10)
        conv_count = sum(1 for _, mod in m.modules() if type(mod).__name__ == "Conv2d")
        assert conv_count == 3
        assert m.feature_dim == 84

    def test_alexnet_five_convs(self, rng):
        m = build_alexnet((3, 32, 32), 10, rng=rng)
        conv_count = sum(1 for _, mod in m.modules() if type(mod).__name__ == "Conv2d")
        linear_count = sum(1 for _, mod in m.modules() if type(mod).__name__ == "Linear")
        assert conv_count == 5
        assert linear_count == 3
        out = m(rng.standard_normal((2, 3, 32, 32)).astype(np.float32))
        assert out.shape == (2, 10)

    @pytest.mark.parametrize("size", [8, 12, 16, 28])
    def test_cnn_adapts_to_small_inputs(self, rng, size):
        m = build_cnn((1, size, size), 10, rng=rng)
        out = m(rng.standard_normal((2, 1, size, size)).astype(np.float32))
        assert out.shape == (2, 10)

    @pytest.mark.parametrize("size", [8, 16, 32])
    def test_alexnet_adapts(self, rng, size):
        m = build_alexnet((3, size, size), 10, rng=rng)
        out = m(rng.standard_normal((2, 3, size, size)).astype(np.float32))
        assert out.shape == (2, 10)

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            build_cnn((1, 28, 14), 10, rng=rng)

    def test_deterministic_init(self):
        m1 = build_cnn((1, 12, 12), 10, rng=np.random.default_rng(42))
        m2 = build_cnn((1, 12, 12), 10, rng=np.random.default_rng(42))
        for a, b in zip(m1.get_weights(), m2.get_weights()):
            np.testing.assert_array_equal(a, b)


class TestRegistry:
    def test_available(self):
        assert set(available_models()) == {"alexnet", "cnn", "mlp"}

    def test_build_by_name(self, rng):
        m = build_model("MLP", (1, 8, 8), 4, rng=rng)
        assert m.name == "mlp"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_model("resnet", (3, 32, 32), 10)


class TestFedModel:
    def test_predict_restores_mode(self, rng):
        m = build_mlp((1, 4, 4), 3, rng=rng)
        m.train()
        m.predict(rng.standard_normal((2, 1, 4, 4)).astype(np.float32))
        assert m.training

    def test_forward_with_features_consistent(self, rng):
        m = build_mlp((1, 4, 4), 3, rng=rng)
        x = rng.standard_normal((2, 1, 4, 4)).astype(np.float32)
        logits, z = m.forward_with_features(x)
        np.testing.assert_allclose(logits, m.head(z), atol=1e-6)

    def test_output_shape(self, rng):
        m = build_cnn((1, 12, 12), 7, rng=rng)
        assert m.output_shape((1, 12, 12)) == (7,)


class TestProfile:
    def test_comm_bytes_matches_params(self, rng):
        m = build_mlp((1, 28, 28), 10, rng=rng)
        prof = profile_model(m)
        assert prof.comm_bytes == 4 * m.num_parameters()
        assert prof.backward_flops == 2 * prof.forward_flops

    def test_table3_ordering(self, rng):
        """Table III: AlexNet >> CNN, MLP in both params and FLOPs;
        the paper's CNN has fewer params but more FLOPs than its MLP."""
        mlp = profile_model(build_mlp((1, 28, 28), 10, rng=rng))
        cnn = profile_model(build_cnn((1, 28, 28), 10, rng=rng))
        alex = profile_model(build_alexnet((3, 32, 32), 10, rng=rng))
        assert alex.num_params > mlp.num_params
        assert alex.forward_flops > cnn.forward_flops > mlp.forward_flops
        assert cnn.num_params < mlp.num_params  # conv sharing beats dense

    def test_table3_row_keys(self, rng):
        row = profile_model(build_mlp((1, 28, 28), 10, rng=rng)).table3_row()
        assert set(row) == {"model", "communication_mb", "params_m", "mflops"}

    def test_flops_match_runtime_shapes(self, rng):
        """Analytic per-layer FLOPs use the same shapes the forward produces."""
        m = build_cnn((1, 12, 12), 10, rng=rng)
        assert m.forward_flops((1, 12, 12)) > 0
        out = m(rng.standard_normal((1, 1, 12, 12)).astype(np.float32))
        assert out.shape == (1, 10)
