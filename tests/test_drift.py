"""Drift diagnostics (the quantitative Fig. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import FedAvg, FedProx
from repro.analysis import (
    DriftTracker,
    drift_from_global,
    update_cosine_consistency,
    update_divergence,
)
from repro.fl import FLConfig, Simulation
from repro.fl.types import ClientUpdate


def _upd(cid, vec):
    return ClientUpdate(cid, [np.asarray(vec, dtype=np.float32)], 10, 0.0)


GLOBAL = [np.zeros(3, dtype=np.float32)]


class TestMetrics:
    def test_identical_updates_zero_divergence(self):
        ups = [_upd(0, [1, 2, 3]), _upd(1, [1, 2, 3])]
        assert update_divergence(ups, GLOBAL) == 0.0
        assert update_cosine_consistency(ups, GLOBAL) == pytest.approx(1.0)

    def test_opposite_updates(self):
        ups = [_upd(0, [1, 0, 0]), _upd(1, [-1, 0, 0])]
        assert update_divergence(ups, GLOBAL) == pytest.approx(2.0)
        assert update_cosine_consistency(ups, GLOBAL) == pytest.approx(-1.0)

    def test_orthogonal_updates(self):
        ups = [_upd(0, [1, 0, 0]), _upd(1, [0, 1, 0])]
        assert update_cosine_consistency(ups, GLOBAL) == pytest.approx(0.0, abs=1e-6)

    def test_drift_from_global(self):
        ups = [_upd(0, [3, 4, 0])]
        assert drift_from_global(ups, GLOBAL)[0] == pytest.approx(5.0)

    def test_single_client_defaults(self):
        ups = [_upd(0, [1, 1, 1])]
        assert update_divergence(ups, GLOBAL) == 0.0
        assert update_cosine_consistency(ups, GLOBAL) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            update_divergence([], GLOBAL)


class TestDriftTracker:
    def test_attach_and_observe(self, tiny_data, small_config):
        sim = Simulation(tiny_data, FedAvg(), small_config, model_name="mlp")
        tracker = DriftTracker().attach(sim)
        sim.run()
        s = tracker.summary()
        assert s["rounds"] == small_config.rounds
        assert s["mean_drift"] > 0
        assert -1.0 <= s["mean_consistency"] <= 1.0
        sim.close()

    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            DriftTracker().summary()

    def test_noniid_less_consistent_than_iid(self, tiny_data, tiny_iid_data, small_config):
        """Fig. 1's claim, measured: non-IID updates agree less."""
        cons = {}
        for name, data in (("noniid", tiny_data), ("iid", tiny_iid_data)):
            sim = Simulation(data, FedAvg(), small_config, model_name="mlp")
            tracker = DriftTracker().attach(sim)
            sim.run()
            cons[name] = tracker.summary()["mean_consistency"]
            sim.close()
        assert cons["iid"] > cons["noniid"]

    def test_fedprox_reduces_drift(self, tiny_data, small_config):
        """FedProx's proximal pull must shrink client displacement norms."""
        drifts = {}
        for name, strat in (("avg", FedAvg()), ("prox", FedProx(mu=5.0))):
            sim = Simulation(tiny_data, strat, small_config, model_name="mlp")
            tracker = DriftTracker().attach(sim)
            sim.run()
            drifts[name] = tracker.summary()["mean_drift"]
            sim.close()
        assert drifts["prox"] < drifts["avg"]
