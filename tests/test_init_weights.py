"""Weight initializers (repro.nn.init)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import init as nn_init


class TestFanInOut:
    def test_dense_shape(self):
        assert nn_init.fan_in_out((10, 20)) == (10, 20)

    def test_conv_shape(self):
        # (out_c, in_c, kh, kw) -> fan_in = in_c*kh*kw, fan_out = out_c*kh*kw
        assert nn_init.fan_in_out((8, 3, 5, 5)) == (3 * 25, 8 * 25)

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            nn_init.fan_in_out((3,))


class TestKaiming:
    def test_bound_respected(self, rng):
        w = nn_init.kaiming_uniform(rng, (100, 50))
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 100)
        assert np.abs(w).max() <= bound + 1e-6
        assert w.dtype == np.float32

    def test_variance_scales_with_fan_in(self, rng):
        small_fan = nn_init.kaiming_uniform(rng, (10, 2000))
        large_fan = nn_init.kaiming_uniform(rng, (1000, 2000))
        assert small_fan.std() > large_fan.std()

    def test_deterministic_given_rng(self):
        a = nn_init.kaiming_uniform(np.random.default_rng(5), (6, 6))
        b = nn_init.kaiming_uniform(np.random.default_rng(5), (6, 6))
        np.testing.assert_array_equal(a, b)


class TestXavier:
    def test_bound_respected(self, rng):
        w = nn_init.xavier_uniform(rng, (30, 70))
        bound = np.sqrt(6.0 / 100)
        assert np.abs(w).max() <= bound + 1e-6

    def test_conv_shape_supported(self, rng):
        w = nn_init.xavier_uniform(rng, (4, 3, 3, 3))
        assert w.shape == (4, 3, 3, 3)

    def test_roughly_zero_mean(self, rng):
        w = nn_init.xavier_uniform(rng, (200, 200))
        assert abs(float(w.mean())) < 0.005


class TestZeros:
    def test_zeros(self):
        z = nn_init.zeros((3, 4))
        assert z.shape == (3, 4)
        assert (z == 0).all()
        assert z.dtype == np.float32
