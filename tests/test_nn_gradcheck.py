"""Numerical gradient verification for every differentiable layer and loss.

These tests are the foundation of trust in the whole reproduction: every FL
algorithm ultimately consumes the gradients produced here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from tests.conftest import check_layer_gradients, numeric_grad_scalar


def _x(rng, *shape):
    return rng.standard_normal(shape).astype(np.float32)


class TestLayerGradients:
    def test_linear(self, rng):
        layer = nn.Linear(7, 5, rng=rng)
        check_layer_gradients(layer, _x(rng, 4, 7))

    def test_linear_no_bias(self, rng):
        layer = nn.Linear(6, 3, bias=False, rng=rng)
        check_layer_gradients(layer, _x(rng, 5, 6))

    def test_conv2d_basic(self, rng):
        layer = nn.Conv2d(2, 3, kernel_size=3, rng=rng)
        check_layer_gradients(layer, _x(rng, 2, 2, 6, 6))

    def test_conv2d_padded(self, rng):
        layer = nn.Conv2d(1, 4, kernel_size=5, padding=2, rng=rng)
        check_layer_gradients(layer, _x(rng, 2, 1, 8, 8))

    def test_conv2d_strided(self, rng):
        layer = nn.Conv2d(3, 2, kernel_size=3, stride=2, padding=1, rng=rng)
        check_layer_gradients(layer, _x(rng, 2, 3, 7, 7))

    def test_maxpool(self, rng):
        layer = nn.MaxPool2d(2)
        # Scale up so distinct maxima are well separated (avoids ties that
        # make the numerical derivative ill-defined at kink points).
        x = (_x(rng, 2, 3, 6, 6) * 3).astype(np.float32)
        check_layer_gradients(layer, x)

    def test_maxpool_overlapping(self, rng):
        layer = nn.MaxPool2d(3, stride=2)
        x = (_x(rng, 2, 2, 7, 7) * 3).astype(np.float32)
        check_layer_gradients(layer, x)

    def test_avgpool(self, rng):
        layer = nn.AvgPool2d(2)
        check_layer_gradients(layer, _x(rng, 2, 3, 6, 6))

    def test_relu(self, rng):
        x = _x(rng, 4, 9) * 3  # keep entries away from the kink at 0
        x[np.abs(x) < 0.2] += 0.5
        check_layer_gradients(nn.ReLU(), x)

    def test_leaky_relu(self, rng):
        x = _x(rng, 4, 9) * 3
        x[np.abs(x) < 0.2] += 0.5
        check_layer_gradients(nn.LeakyReLU(0.1), x)

    def test_tanh(self, rng):
        check_layer_gradients(nn.Tanh(), _x(rng, 4, 6))

    def test_sigmoid(self, rng):
        check_layer_gradients(nn.Sigmoid(), _x(rng, 4, 6))

    def test_flatten(self, rng):
        check_layer_gradients(nn.Flatten(), _x(rng, 3, 2, 4, 4))

    def test_batchnorm1d(self, rng):
        layer = nn.BatchNorm1d(6)
        check_layer_gradients(layer, _x(rng, 16, 6))

    def test_batchnorm2d(self, rng):
        layer = nn.BatchNorm2d(3)
        check_layer_gradients(layer, _x(rng, 8, 3, 5, 5))

    def test_sequential_mlp(self, rng):
        seq = nn.Sequential(
            nn.Flatten(),
            nn.Linear(16, 8, rng=rng),
            nn.Tanh(),
            nn.Linear(8, 3, rng=rng),
        )
        check_layer_gradients(seq, _x(rng, 4, 1, 4, 4))

    def test_sequential_cnn(self, rng):
        seq = nn.Sequential(
            nn.Conv2d(1, 2, 3, padding=1, rng=rng),
            nn.Tanh(),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(2 * 3 * 3, 4, rng=rng),
        )
        check_layer_gradients(seq, _x(rng, 2, 1, 6, 6))


class TestLossGradients:
    def _check_loss_grad(self, loss_fn, x, *args, atol=2e-2, rtol=8e-2, seed=0):
        _, grad = loss_fn(x, *args)

        def scalar():
            val, _ = loss_fn(x, *args)
            return float(val)

        idx, num = numeric_grad_scalar(scalar, x, seed=seed)
        ana = grad.reshape(-1)[idx].astype(np.float64)
        denom = np.maximum(np.abs(num), np.abs(ana))
        err = np.abs(num - ana)
        assert ((err <= atol) | (err <= rtol * denom)).all(), f"worst err {err.max()}"

    def test_cross_entropy(self, rng):
        logits = _x(rng, 8, 5)
        labels = rng.integers(0, 5, size=8)
        self._check_loss_grad(nn.CrossEntropyLoss(), logits, labels)

    def test_mse(self, rng):
        pred = _x(rng, 6, 4)
        target = _x(rng, 6, 4)
        self._check_loss_grad(nn.MSELoss(), pred, target)

    def test_kl_div(self, rng):
        student = _x(rng, 6, 5)
        teacher = _x(rng, 6, 5)
        self._check_loss_grad(nn.KLDivLoss(temperature=2.0), student, teacher)

    def test_model_contrastive(self, rng):
        z = _x(rng, 6, 8)
        zg = _x(rng, 6, 8)
        zp = _x(rng, 6, 8)
        self._check_loss_grad(nn.ModelContrastiveLoss(0.5), z, zg, zp)

    def test_triplet_sample(self, rng):
        a = _x(rng, 6, 5) * 2
        p = _x(rng, 6, 5) * 2
        n = _x(rng, 6, 5) * 2
        loss = nn.TripletSampleLoss(margin=1.0)
        self._check_loss_grad(loss, a, p, n)


class TestFedModelGradients:
    def test_dfeatures_injection(self, rng):
        """backward(dlogits, dfeatures) must equal the sum of both paths."""
        from repro.models import build_mlp

        model = build_mlp((1, 4, 4), 3, hidden=6, rng=rng)
        x = _x(rng, 5, 1, 4, 4)
        logits, z = model.forward_with_features(x)
        dlogits = _x(rng, *logits.shape)
        dz_extra = _x(rng, *z.shape)

        model.zero_grad()
        model.forward_with_features(x)
        model.backward(dlogits, dfeatures=dz_extra)
        combined = [p.grad.copy() for p in model.parameters()]

        # Path 1: logits only.
        model.zero_grad()
        model.forward_with_features(x)
        model.backward(dlogits)
        only_logits = [p.grad.copy() for p in model.parameters()]

        # Path 2: features only (zero dlogits).
        model.zero_grad()
        model.forward_with_features(x)
        model.backward(np.zeros_like(dlogits), dfeatures=dz_extra)
        only_feats = [p.grad.copy() for p in model.parameters()]

        for c, a, b in zip(combined, only_logits, only_feats):
            np.testing.assert_allclose(c, a + b, atol=1e-4)
