"""The network federation executor (repro.fl.net): frame codec properties,
deterministic wire faults, the coordinator/worker handshake, and the
headline contract — a loopback network run at a fixed seed is byte-identical
in History to the serial executor, including under injected frame drops with
retries enabled."""

from __future__ import annotations

import json
import os
import pickle
import signal
import socket
import subprocess
import sys
import threading
import time
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExperimentSpec, run_experiment
from repro.api.engine import Engine
from repro.fl.net import frames
from repro.fl.net.coordinator import CoordinatorServer, NetworkExecutor
from repro.fl.net.frames import (
    HEADER_SIZE,
    Frame,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    pack_blob_payload,
    unpack_blob_payload,
)
from repro.fl.net.netfaults import (
    DelayFrameFault,
    DropFrameFault,
    DuplicateFrameFault,
    PartitionFault,
    TruncateFrameFault,
    available_netfaults,
    build_netfault,
)
from repro.fl.net.transport import ChannelClosed, FramedChannel
from repro.fl.net.worker import WorkerClient

TINY = dict(dataset="tiny", model="mlp", method="fedavg", n_clients=4,
            clients_per_round=2, rounds=2, batch_size=20, lr=0.05, seed=1)


def tiny_spec(**overrides) -> ExperimentSpec:
    return ExperimentSpec(**{**TINY, **overrides})


def assert_identical_histories(a, b, context=""):
    """Byte-identical round records; only wall/phase timings are exempt."""
    assert len(a) == len(b), context
    for ra, rb in zip(a.records, b.records):
        da, db = ra.to_dict(), rb.to_dict()
        for key in da:
            if key in ("wall_seconds", "phase_seconds"):
                continue
            assert da[key] == db[key], f"{context}: {key}: {da[key]} != {db[key]}"


# ---------------------------------------------------------------------------
# Frame codec: property suite.
# ---------------------------------------------------------------------------

payloads = st.binary(max_size=2048)
ftypes = st.integers(min_value=0, max_value=255)


class TestFrameCodecProperties:
    @given(st.lists(st.tuples(ftypes, payloads), max_size=8),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_survives_arbitrary_chunking(self, msgs, chunk):
        """Any frame sequence, fed in any chunking, decodes exactly."""
        blob = b"".join(
            encode_frame(ftype, seq + 1, payload)
            for seq, (ftype, payload) in enumerate(msgs)
        )
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(blob), chunk):
            out.extend(decoder.feed(blob[i:i + chunk]))
        assert out == [
            Frame(ftype, seq + 1, payload)
            for seq, (ftype, payload) in enumerate(msgs)
        ]
        assert decoder.pending == 0

    @given(ftypes, payloads, st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncated_stream_never_partial_reads(self, ftype, payload, data):
        """A prefix of a frame yields nothing — no partial frame, no error."""
        blob = encode_frame(ftype, 1, payload)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        decoder = FrameDecoder()
        assert decoder.feed(blob[:cut]) == []
        assert decoder.pending == cut
        # The remainder completes the frame exactly.
        assert decoder.feed(blob[cut:]) == [Frame(ftype, 1, payload)]

    @given(st.binary(min_size=HEADER_SIZE, max_size=HEADER_SIZE + 64))
    @settings(max_examples=60, deadline=None)
    def test_garbage_prefix_raises_clean_protocol_error(self, garbage):
        """Random bytes either fail loudly or wait for more — never hang on
        a bogus length and never surface a fabricated frame."""
        decoder = FrameDecoder()
        try:
            got = decoder.feed(garbage)
        except ProtocolError:
            return  # the expected common case: bad magic or CRC
        # Astronomically unlikely (a valid CRC over random bytes), but the
        # contract still holds: whatever decoded must re-encode to a prefix
        # of the input.
        consumed = b"".join(
            encode_frame(f.ftype, f.seq, f.payload) for f in got
        )
        assert garbage.startswith(consumed)

    @given(ftypes, payloads, st.integers(min_value=0, max_value=HEADER_SIZE - 1))
    @settings(max_examples=60, deadline=None)
    def test_header_bitflip_is_rejected(self, ftype, payload, pos):
        blob = bytearray(encode_frame(ftype, 7, payload))
        blob[pos] ^= 0x40
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(bytes(blob))
            # A flip that survives the magic check must die on the CRC; a
            # flip inside the CRC field itself dies on the CRC compare.

    @given(st.lists(st.tuples(ftypes, payloads), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_duplicate_frames_are_idempotent_under_dedupe(self, msgs):
        """Feeding every frame twice (the duplicate_frame fault) decodes to
        the same sequence as feeding each once."""
        encoded = [
            encode_frame(ftype, seq + 1, payload)
            for seq, (ftype, payload) in enumerate(msgs)
        ]
        once = FrameDecoder(dedupe=True).feed(b"".join(encoded))
        twice = FrameDecoder(dedupe=True).feed(
            b"".join(blob + blob for blob in encoded)
        )
        assert twice == once

    @given(st.binary(max_size=256), st.binary(max_size=256))
    @settings(max_examples=60, deadline=None)
    def test_blob_payload_roundtrip(self, meta, blob):
        packed = pack_blob_payload(meta, blob)
        meta2, view = unpack_blob_payload(packed)
        assert meta2 == meta
        assert bytes(view) == blob

    def test_wrong_protocol_version_rejected(self):
        prefix = frames._PREFIX.pack(frames.MAGIC, frames.PROTOCOL_VERSION + 1,
                                     frames.TASK, 1, 0)
        blob = prefix + frames._CRC.pack(zlib.crc32(prefix))
        with pytest.raises(ProtocolError, match="version"):
            FrameDecoder().feed(blob)

    def test_oversized_length_rejected_before_allocation(self):
        prefix = frames._PREFIX.pack(frames.MAGIC, frames.PROTOCOL_VERSION,
                                     frames.TASK, 1, 1 << 40)
        blob = prefix + frames._CRC.pack(zlib.crc32(prefix))
        with pytest.raises(ProtocolError, match="payload bytes"):
            FrameDecoder().feed(blob)

    def test_truncated_blob_payload_raises(self):
        packed = pack_blob_payload(b"m" * 10, b"b" * 10)
        with pytest.raises(ProtocolError):
            unpack_blob_payload(packed[:12])


# ---------------------------------------------------------------------------
# Netfaults: seeded determinism + registry.
# ---------------------------------------------------------------------------

class TestNetFaults:
    def test_registry_lists_all_five(self):
        assert available_netfaults() == [
            "delay_frame", "drop_frame", "duplicate_frame",
            "partition", "truncate_frame",
        ]

    def test_unknown_name_and_bad_kwargs_raise(self):
        with pytest.raises(ValueError, match="unknown netfault"):
            build_netfault("packet_gremlin", rate=0.5, seed=0)
        with pytest.raises(ValueError, match="bad arguments"):
            build_netfault("drop_frame", rate=0.5, seed=0, wat=1)
        with pytest.raises(ValueError, match="rate"):
            build_netfault("drop_frame", rate=1.5, seed=0)

    def test_coins_are_pure_functions_of_seed_and_key(self):
        a = DropFrameFault(rate=0.5, seed=7)
        b = DropFrameFault(rate=0.5, seed=7)
        keys = [("task", w, t, s) for w in range(3) for t in range(5) for s in range(2)]
        assert [a.fires(*k) for k in keys] == [b.fires(*k) for k in keys]
        c = DropFrameFault(rate=0.5, seed=8)
        assert [a.fires(*k) for k in keys] != [c.fires(*k) for k in keys]

    def test_resend_redraws_its_coin(self):
        fault = DropFrameFault(rate=0.5, seed=3)
        draws = {fault.fires("send", "task", 0, 9, attempt) for attempt in range(32)}
        assert draws == {True, False}, "attempt counter must vary the coin"

    def test_send_plan_shapes(self):
        data = b"x" * 100
        assert DropFrameFault(rate=1.0, seed=0).send_plan(data, "k") == ([], 0.0)
        assert DuplicateFrameFault(rate=1.0, seed=0).send_plan(data, "k") == (
            [data, data], 0.0)
        chunks, delay = TruncateFrameFault(rate=1.0, seed=0).send_plan(data, "k")
        assert chunks == [data[:50]] and delay == 0.0
        chunks, delay = DelayFrameFault(rate=1.0, seed=0, min_delay_s=0.01,
                                        max_delay_s=0.02).send_plan(data, "k")
        assert chunks == [data] and 0.01 <= delay <= 0.02
        assert PartitionFault(rate=1.0, seed=0).blocked(0, 1)
        assert not PartitionFault(rate=0.0, seed=0).blocked(0, 1)


# ---------------------------------------------------------------------------
# Transport: framed channels over a socketpair.
# ---------------------------------------------------------------------------

class TestFramedChannel:
    def _pair(self):
        a, b = socket.socketpair()
        return FramedChannel(a), FramedChannel(b)

    def test_send_recv_roundtrip_and_byte_accounting(self):
        left, right = self._pair()
        try:
            left.send_frame(frames.TASK, b"payload")
            got = right.recv_frames(timeout=1.0)
            assert [(f.ftype, f.payload) for f in got] == [(frames.TASK, b"payload")]
            assert left.bytes_sent == HEADER_SIZE + len(b"payload")
            assert right.bytes_recv == left.bytes_sent
        finally:
            left.close()
            right.close()

    def test_eof_raises_channel_closed(self):
        left, right = self._pair()
        left.close()
        with pytest.raises(ChannelClosed):
            right.recv_frames(timeout=1.0)
        right.close()

    def test_injected_duplicate_is_deduped_at_the_decoder(self):
        a, b = socket.socketpair()
        left = FramedChannel(a, injector=DuplicateFrameFault(rate=1.0, seed=0))
        right = FramedChannel(b)
        try:
            left.send_frame(frames.TASK, b"once", fault_key=("task", 0, 0, 1))
            got = right.recv_frames(timeout=1.0)
            assert [f.payload for f in got] == [b"once"]
        finally:
            left.close()
            right.close()


# ---------------------------------------------------------------------------
# Coordinator handshake: cell_key gatekeeping, reconnect accounting.
# ---------------------------------------------------------------------------

class TestHandshake:
    def _run_client(self, server, client):
        """Drive the server pump while the client runs its loop."""
        rc = {}

        def target():
            rc["code"] = client.run()

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10.0
        while thread.is_alive() and time.monotonic() < deadline:
            server._pump(0.05)
        thread.join(timeout=1.0)
        assert "code" in rc, "worker client never finished"
        return rc["code"]

    def test_matching_cell_key_registers(self):
        server = CoordinatorServer("127.0.0.1:0", cell_key="cell-a")
        try:
            host, port = server.address
            code = self._run_client(
                server, WorkerClient(host, port, cell_key="cell-a",
                                     connect_timeout_s=5.0, max_reconnects=0))
            # WELCOME carried spec=None -> the client treats it as "nothing
            # to serve" and exits cleanly; registration itself succeeded.
            assert code == 0
            assert server.stats()["connections"] == 1
        finally:
            server.shutdown()

    def test_cell_key_mismatch_is_refused(self):
        server = CoordinatorServer("127.0.0.1:0", cell_key="cell-a")
        try:
            host, port = server.address
            code = self._run_client(
                server, WorkerClient(host, port, cell_key="cell-b",
                                     connect_timeout_s=5.0, max_reconnects=0))
            assert code == 1
            assert server.n_connected == 0
        finally:
            server.shutdown()

    def test_worker_gives_up_after_reconnect_budget(self):
        # Nothing listens on this port: bind-then-close guarantees refusal.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = WorkerClient("127.0.0.1", port, connect_timeout_s=1.0,
                              backoff_base_s=0.01, max_reconnects=1)
        assert client.run() == 1

    def test_worker_main_rejects_malformed_connect(self):
        from repro.fl.net.worker import main

        with pytest.raises(SystemExit):
            main(["--connect", "no-port-here"])


# ---------------------------------------------------------------------------
# The headline contract: loopback network == serial, byte for byte.
# ---------------------------------------------------------------------------

class TestNetworkDeterminism:
    @pytest.fixture(scope="class")
    def serial_reference(self):
        return run_experiment(tiny_spec(executor="serial"))

    def test_clean_loopback_matches_serial(self, serial_reference):
        hist = run_experiment(tiny_spec(executor="network", net_workers=2))
        assert_identical_histories(serial_reference, hist, "network/clean")

    def test_drop_frame_with_retries_matches_serial(self, serial_reference):
        """Dropped frames are absorbed below the engine: resend timers plus
        the worker result cache keep the History identical — including the
        (empty) failed/retried lists."""
        hist = run_experiment(tiny_spec(
            executor="network", net_workers=2,
            net_fault="drop_frame", net_fault_rate=0.2, task_retries=2))
        assert_identical_histories(serial_reference, hist, "network/drop_frame")

    def test_duplicate_frame_matches_serial(self, serial_reference):
        hist = run_experiment(tiny_spec(
            executor="network", net_workers=2,
            net_fault="duplicate_frame", net_fault_rate=0.4))
        assert_identical_histories(serial_reference, hist, "network/duplicate")

    def test_delay_frame_matches_serial(self, serial_reference):
        hist = run_experiment(tiny_spec(
            executor="network", net_workers=2,
            net_fault="delay_frame", net_fault_rate=0.3,
            net_fault_kwargs={"min_delay_s": 0.01, "max_delay_s": 0.05}))
        assert_identical_histories(serial_reference, hist, "network/delay")

    def test_fl_fault_composes_with_network_executor(self, serial_reference):
        """Task-level faults (repro.fl.faults) ride the wire unchanged: the
        crash coin is keyed by (client, round, attempt), so the network run
        fails, retries and recovers exactly like the serial one."""
        spec_kwargs = dict(fault="crash", fault_rate=0.6, rounds=3,
                           task_retries=2, quorum_fraction=0.5)
        serial = run_experiment(tiny_spec(executor="serial", **spec_kwargs))
        net = run_experiment(tiny_spec(executor="network", net_workers=2,
                                       **spec_kwargs))
        assert_identical_histories(serial, net, "network/crash-fault")
        # And the fault actually fired somewhere, or this test is vacuous.
        assert any(r.failed_clients or r.retried_clients for r in serial.records)


class TestNetworkRobustness:
    def test_truncate_frame_reconnects_and_recovers(self):
        """A truncated frame destroys framing: the worker reconnects, the
        coordinator synthesizes connection_lost, and the retry/quorum policy
        finishes the run."""
        hist = run_experiment(tiny_spec(
            executor="network", net_workers=2, rounds=2,
            net_fault="truncate_frame", net_fault_rate=0.05,
            task_retries=2, quorum_fraction=0.5))
        assert len(hist) == 2

    def test_partition_recovers_through_policy(self):
        hist = run_experiment(tiny_spec(
            executor="network", net_workers=2, rounds=2,
            net_connect_timeout_s=10.0,
            net_fault="partition", net_fault_rate=0.2,
            task_retries=2, quorum_fraction=0.5))
        assert len(hist) == 2

    def test_kill_dash_nine_worker_mid_round(self):
        """The chaos headline: SIGKILL a live worker subprocess mid-round;
        the engine must finish every round through retry/quorum."""
        from repro.api.callbacks import Callback

        class KillOneWorker(Callback):
            def __init__(self):
                self.killed = False

            def on_round_start(self, engine, round_idx, selected):
                if round_idx == 1 and not self.killed:
                    executor = engine.executor
                    assert isinstance(executor, NetworkExecutor)
                    os.kill(executor._procs[0].pid, signal.SIGKILL)
                    self.killed = True

        killer = KillOneWorker()
        hist = run_experiment(
            tiny_spec(executor="network", net_workers=2, rounds=3,
                      task_retries=2, quorum_fraction=0.5),
            callbacks=[killer])
        assert killer.killed
        assert len(hist) == 3
        assert np.isfinite(hist.accuracies()).all()

    def test_wire_codecs_complete(self):
        for codec, kwargs in (("topk", {"fraction": 0.25}),
                              ("quantization", {"bits": 8})):
            hist = run_experiment(tiny_spec(
                executor="network", net_workers=2,
                net_codec=codec, net_codec_kwargs=kwargs))
            assert len(hist) == TINY["rounds"], codec
            assert np.isfinite(hist.accuracies()).all(), codec

    def test_wire_metrics_are_published(self, tmp_path):
        metrics = tmp_path / "net_metrics.prom"
        run_experiment(tiny_spec(executor="network", net_workers=2,
                                 metrics_out=str(metrics)))
        text = metrics.read_text()
        assert "fl_net_bytes_sent_total" in text
        assert "fl_net_bytes_recv_total" in text
        sent = float(next(line.split()[-1] for line in text.splitlines()
                          if line.startswith("fl_net_bytes_sent_total")))
        assert sent > 0


# ---------------------------------------------------------------------------
# Spec / engine wiring.
# ---------------------------------------------------------------------------

class TestSpecWiring:
    def test_net_knobs_require_network_executor(self):
        for kwargs in (dict(net_workers=2), dict(net_fault_rate=0.5),
                       dict(net_codec="topk"), dict(net_bind="0.0.0.0:9999")):
            with pytest.raises(ValueError, match="executor='network'"):
                tiny_spec(**kwargs)

    def test_network_requires_sync_mode(self):
        with pytest.raises(ValueError, match="synchronous"):
            tiny_spec(executor="network", mode="async")

    def test_net_fault_pairing_validated(self):
        with pytest.raises(ValueError, match="never"):
            tiny_spec(executor="network", net_fault="drop_frame")
        with pytest.raises(ValueError, match="does nothing"):
            tiny_spec(executor="network", net_fault_rate=0.5)
        with pytest.raises(ValueError, match="unknown net_codec"):
            tiny_spec(executor="network", net_codec="gzip")

    def test_retry_backoff_base_validated_and_behavior_bearing(self):
        with pytest.raises(ValueError, match="retry_backoff_base_s"):
            tiny_spec(retry_backoff_base_s=0.0)
        # Backoff pacing shapes which attempts land, so it must shift the
        # experiment's identity (unlike the pure-topology net_* knobs).
        assert (tiny_spec(retry_backoff_base_s=0.5).cell_key()
                != tiny_spec().cell_key())

    def test_topology_knobs_do_not_change_the_cell_key(self):
        """The determinism contract in hash form: where the coordinator
        binds and how many workers serve cannot change the experiment."""
        base = tiny_spec(executor="network")
        assert base.cell_key() == tiny_spec(
            executor="network", net_workers=4,
            net_bind="127.0.0.1:18000", net_connect_timeout_s=5.0,
            net_heartbeat_s=0.2).cell_key()
        # ...but the behavior-bearing wire knobs do.
        assert base.cell_key() != tiny_spec(
            executor="network", net_fault="drop_frame",
            net_fault_rate=0.1).cell_key()

    def test_spec_round_trips_net_fields(self):
        spec = tiny_spec(executor="network", net_workers=3,
                         net_codec="topk", net_codec_kwargs={"fraction": 0.1},
                         retry_backoff_base_s=0.25)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_engine_rejects_nonpositive_backoff(self):
        spec = tiny_spec()
        with pytest.raises(ValueError, match="retry_backoff_base_s"):
            Engine(spec.build_data(), spec.build_strategy(), spec.build_config(),
                   model_name="mlp", retry_backoff_base_s=0.0)


class TestEngineContextManager:
    def test_with_block_closes_and_close_is_idempotent(self):
        spec = tiny_spec()
        with Engine(spec.build_data(), spec.build_strategy(), spec.build_config(),
                    model_name="mlp") as engine:
            engine.run_round()
        assert engine._closed
        engine.close()  # second close must be a no-op, not a crash
        assert engine._closed

    def test_network_executor_close_is_idempotent(self):
        spec = tiny_spec(executor="network", net_workers=2)
        engine = None
        from repro.api.registry import build_mode

        engine = build_mode("sync", spec=spec, data=spec.build_data())
        try:
            assert engine.executor.name == "network"
            assert engine.executor.borrow_worker() is None
            assert engine._policy_active, (
                "a real wire is inherently unreliable; the failure policy "
                "must be armed even with no injector configured")
        finally:
            engine.close()
            engine.close()
        assert engine.executor._procs == []


# ---------------------------------------------------------------------------
# Crash-safe observability writes (the atomic-write satellite).
# ---------------------------------------------------------------------------

class TestAtomicObservabilityWrites:
    def test_kill_mid_write_never_tears_the_file(self, tmp_path):
        """SIGKILL a process hammering atomic_write_bytes: the target file
        must always parse as one complete payload (old or new, never torn)."""
        target = tmp_path / "victim.json"
        script = (
            "import json, sys\n"
            "from repro.io.persistence import atomic_write_bytes\n"
            "path = sys.argv[1]\n"
            "i = 0\n"
            "while True:\n"
            "    blob = json.dumps({'i': i, 'pad': 'x' * 200000}).encode()\n"
            "    atomic_write_bytes(path, blob)\n"
            "    i += 1\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            ["src"] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        proc = subprocess.Popen([sys.executable, "-c", script, str(target)],
                                env=env, cwd=os.path.dirname(os.path.dirname(
                                    os.path.abspath(__file__))))
        try:
            deadline = time.monotonic() + 20.0
            while not target.exists() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert target.exists(), "writer never produced its first file"
            time.sleep(0.2)  # let it get properly mid-flight
        finally:
            proc.kill()
            proc.wait()
        payload = json.loads(target.read_text())  # parses, or the test fails
        assert payload["i"] >= 0

    def test_trace_file_is_published_atomically(self, tmp_path):
        trace = tmp_path / "spans.jsonl"
        run_experiment(tiny_spec(trace=str(trace)))
        assert trace.exists()
        assert not (tmp_path / "spans.jsonl.tmp").exists()
        lines = trace.read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)

    def test_killed_run_leaves_no_torn_trace(self, tmp_path):
        """A process killed mid-run leaves only the .tmp stream — the trace
        path itself never exists half-written."""
        trace = tmp_path / "spans.jsonl"
        script = (
            "import os, sys\n"
            "from repro.obs.trace import JsonlExporter\n"
            "exporter = JsonlExporter(sys.argv[1])\n"
            "exporter.export({'span': 'round', 'i': 0})\n"
            "os._exit(1)\n"  # killed before close(): no publish
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            ["src"] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        subprocess.run([sys.executable, "-c", script, str(trace)], env=env,
                       cwd=os.path.dirname(os.path.dirname(
                           os.path.abspath(__file__))), check=False)
        assert not trace.exists()
        assert (tmp_path / "spans.jsonl.tmp").exists()

    def test_metrics_out_write_is_atomic(self, tmp_path):
        metrics = tmp_path / "metrics.prom"
        run_experiment(tiny_spec(metrics_out=str(metrics)))
        assert metrics.exists()
        assert not (tmp_path / "metrics.prom.tmp").exists()
