"""Execution backends: registry resolution, shared-memory broadcast, and the
cross-backend determinism contract (fixed seed => byte-identical records on
serial, threaded and process executors)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.api import (
    ExperimentSpec,
    available_executors,
    build_executor,
    register_executor,
    run_experiment,
)
from repro.api.engine import Engine
from repro.fl.executor import ClientTaskSpec, SerialExecutor
from repro.fl.process_executor import ProcessExecutor, WeightLayout

TINY = dict(dataset="tiny", model="mlp", method="fedavg", n_clients=4,
            clients_per_round=2, rounds=2, batch_size=20, lr=0.05)

BACKENDS = [("serial", 1), ("threaded", 2), ("process", 2)]


def tiny_spec(**overrides) -> ExperimentSpec:
    return ExperimentSpec(**{**TINY, **overrides})


def assert_identical_records(a, b, context=""):
    """Byte-identical round records (wall time is the one nondeterministic
    field and is excluded)."""
    assert len(a) == len(b), context
    for ra, rb in zip(a.records, b.records):
        assert ra.round_idx == rb.round_idx, context
        assert ra.selected == rb.selected, context
        assert ra.test_accuracy == rb.test_accuracy, context
        assert ra.test_loss == rb.test_loss, context
        assert ra.mean_train_loss == rb.mean_train_loss, context
        assert ra.cumulative_flops == rb.cumulative_flops, context
        assert ra.cumulative_comm_bytes == rb.cumulative_comm_bytes, context


class TestRegistry:
    def test_builtins_registered(self):
        assert {"auto", "serial", "threaded", "process"} <= set(available_executors())

    def test_unknown_name_raises(self):
        spec = tiny_spec()
        with pytest.raises(ValueError, match="unknown executor"):
            run_experiment(spec.with_axis("executor", "gpu"))

    def test_custom_backend_registers_and_runs(self):
        calls = []

        def _tracing_serial(engine, n_workers):
            calls.append(n_workers)
            return SerialExecutor(engine.make_worker, runtime=engine.runtime)

        register_executor("tracing", _tracing_serial)
        try:
            hist = run_experiment(tiny_spec(executor="tracing"))
            assert len(hist) == TINY["rounds"]
            assert calls == [1]
        finally:
            from repro.api.registry import _EXECUTORS

            _EXECUTORS.pop("tracing", None)

    def test_auto_resolves_by_worker_count(self):
        spec = tiny_spec()
        e1 = Engine(spec.build_data(), spec.build_strategy(), spec.build_config(),
                    model_name="mlp", n_workers=1)
        e2 = Engine(spec.build_data(), spec.build_strategy(), spec.build_config(),
                    model_name="mlp", n_workers=2)
        try:
            assert e1.executor.name == "serial"
            assert e2.executor.name == "threaded"
        finally:
            e1.close()
            e2.close()


class TestSpecAndCLI:
    def test_spec_field_round_trips(self):
        spec = tiny_spec(executor="process", n_workers=2)
        back = ExperimentSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.executor == "process"

    def test_executor_changes_cell_key(self):
        assert tiny_spec().cell_key() != tiny_spec(executor="process").cell_key()

    def test_cli_flags(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["train", "--dataset", "tiny", "--model", "mlp",
                       "--method", "fedavg", "--clients", "4",
                       "--clients-per-round", "2", "--rounds", "2",
                       "--batch-size", "20", "--executor", "process",
                       "--n-workers", "2"])
        assert rc == 0
        assert "best accuracy" in capsys.readouterr().out


class TestDeterminismAcrossBackends:
    """The tentpole contract: one seed, three backends, identical history."""

    @pytest.mark.parametrize("method,overrides", [
        ("fedavg", {}),
        ("fedtrip", {"mu": 0.4}),   # persistent per-client state
        ("moon", {}),               # frozen-model forwards + extras
        ("scaffold", {}),           # model-sized server broadcast payload
    ])
    def test_backends_match_serial(self, method, overrides):
        spec = tiny_spec(method=method, overrides=overrides, rounds=3,
                         n_clients=6, clients_per_round=3, seed=1)
        reference = run_experiment(spec.with_axis("executor", "serial"))
        for executor, n_workers in BACKENDS[1:]:
            hist = run_experiment(
                spec.with_axis("executor", executor).with_axis("n_workers", n_workers)
            )
            assert_identical_records(reference, hist, context=f"{method}/{executor}")

    def test_client_state_round_trips_processes(self):
        """FedTrip's historical model must survive the pickle round trip."""
        spec = tiny_spec(method="fedtrip", rounds=2, clients_per_round=4,
                         executor="process", n_workers=2)
        engine = Engine(spec.build_data(), spec.build_strategy(), spec.build_config(),
                        model_name="mlp", sampler=spec.build_sampler(),
                        n_workers=2, executor="process")
        try:
            engine.run()
            states = [c.state for c in engine.clients]
        finally:
            engine.close()
        assert all(state for state in states), "client state lost across processes"

    def test_end_to_end_smoke_on_selected_backend(self, executor_name, aggregator_name):
        """The backend chosen with ``pytest --executor`` trains end to end,
        under the aggregation rule chosen with ``pytest --aggregator``.

        CI re-runs the tier-1 suite once with ``--executor process`` and
        once with ``--aggregator trimmed_mean`` so the pooled path and the
        robust-aggregation path both see the full smoke regularly.
        """
        n_workers = 1 if executor_name in ("auto", "serial") else 2
        hist = run_experiment(tiny_spec(executor=executor_name, n_workers=n_workers,
                                        aggregator=aggregator_name))
        assert len(hist) == TINY["rounds"]
        assert np.isfinite(hist.accuracies()).all()


class TestProcessExecutorContracts:
    def test_borrow_worker_is_none_and_evaluation_still_works(self):
        spec = tiny_spec(executor="process", n_workers=2)
        engine = Engine(spec.build_data(), spec.build_strategy(), spec.build_config(),
                        model_name="mlp", n_workers=2, executor="process")
        try:
            assert engine.executor.borrow_worker() is None
            engine.run_round()
            acc, loss = engine.evaluate_global()
            assert np.isfinite(acc) and np.isfinite(loss)
        finally:
            engine.close()

    def test_preamble_strategy_rejected(self):
        spec = tiny_spec(method="mimelite")
        for executor in ("threaded", "process"):
            with pytest.raises(ValueError, match="preamble"):
                Engine(spec.build_data(), spec.build_strategy(), spec.build_config(),
                       model_name="mlp", n_workers=2, executor=executor)

    def test_custom_model_fn_rejected(self):
        from repro.models import build_mlp

        spec = tiny_spec()
        data = spec.build_data()
        with pytest.raises(ValueError, match="custom model_fn"):
            Engine(data, spec.build_strategy(), spec.build_config(),
                   model_fn=lambda: build_mlp(data.spec.input_shape,
                                              data.spec.num_classes),
                   n_workers=2, executor="process")

    def test_task_spec_is_picklable(self):
        task = ClientTaskSpec(client_id=3, round_idx=7,
                              state={"w": [np.ones(4)]})
        back = pickle.loads(pickle.dumps(task))
        assert back.client_id == 3 and back.round_idx == 7
        np.testing.assert_array_equal(back.state["w"][0], np.ones(4))

    def test_weight_layout_round_trip(self):
        weights = [np.arange(6, dtype=np.float32).reshape(2, 3),
                   np.ones(3, dtype=np.float64),
                   np.array(2.5, dtype=np.float32)]  # 0-d, odd offsets
        layout = WeightLayout.from_weights(weights)
        buf = bytearray(layout.total_bytes)
        views = layout.views(buf, writeable=True)
        for view, w in zip(views, weights):
            np.copyto(view, w)
        reread = layout.views(buf, writeable=False)
        for view, w in zip(reread, weights):
            np.testing.assert_array_equal(view, w)
            assert view.dtype == w.dtype
            assert not view.flags.writeable

    def test_shared_memory_broadcast_updates_workers(self):
        """Weights written between rounds must be what workers read next."""
        spec = tiny_spec(executor="process", n_workers=2, rounds=3)
        serial = run_experiment(spec.with_axis("executor", "serial"))
        pooled = run_experiment(spec)
        # Round 2+ accuracy depends on round 1's aggregated weights reaching
        # the workers; identical trajectories prove the broadcast works.
        assert_identical_records(serial, pooled, context="broadcast")

    def test_executor_close_is_idempotent(self):
        spec = tiny_spec(executor="process", n_workers=2)
        engine = Engine(spec.build_data(), spec.build_strategy(), spec.build_config(),
                        model_name="mlp", n_workers=2, executor="process")
        engine.run_round()
        engine.close()
        engine.close()  # must not raise

    def test_process_executor_standalone_rejects_bad_weight_count(self):
        spec = tiny_spec()
        engine = Engine(spec.build_data(), spec.build_strategy(), spec.build_config(),
                        model_name="mlp", n_workers=2, executor="process")
        try:
            with pytest.raises(ValueError, match="weight tree"):
                engine.executor.broadcast(engine.server.weights[:-1])
        finally:
            engine.close()
