"""Persistence (histories, checkpoints, experiment store) and the CLI."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.fl.history import History
from repro.fl.types import RoundRecord
from repro.io import (
    ExperimentStore,
    load_checkpoint,
    load_history,
    save_checkpoint,
    save_history,
)
from repro.models import build_mlp


def _history(n=5):
    h = History()
    for i in range(n):
        h.append(RoundRecord(i, [0, 1], 50.0 + i, 1.0 - i * 0.1, 2.0,
                             1e9 * (i + 1), 1e6 * (i + 1), 0.5))
    return h


class TestHistoryIO:
    def test_roundtrip(self, tmp_path):
        h = _history()
        path = save_history(h, str(tmp_path / "h.json"))
        back = load_history(path)
        assert len(back) == len(h)
        np.testing.assert_allclose(back.accuracies(), h.accuracies())
        np.testing.assert_allclose(back.flops(), h.flops())
        assert back.records[0].selected == [0, 1]

    def test_none_accuracy_preserved(self, tmp_path):
        h = History()
        h.append(RoundRecord(0, [0], None, None, 1.0, 1.0, 1.0, 0.1))
        back = load_history(save_history(h, str(tmp_path / "h.json")))
        assert back.records[0].test_accuracy is None


class TestCheckpointIO:
    def test_roundtrip_exact(self, tmp_path, rng):
        model = build_mlp((1, 4, 4), 3, rng=rng)
        path = save_checkpoint(model, str(tmp_path / "m.npz"), {"round": 7})
        other = build_mlp((1, 4, 4), 3, rng=np.random.default_rng(99))
        meta = load_checkpoint(other, path)
        assert meta == {"round": 7}
        for a, b in zip(model.get_weights(), other.get_weights()):
            np.testing.assert_array_equal(a, b)

    def test_no_metadata(self, tmp_path, rng):
        model = build_mlp((1, 4, 4), 3, rng=rng)
        path = save_checkpoint(model, str(tmp_path / "m.npz"))
        assert load_checkpoint(model, path) == {}


class TestExperimentStore:
    def test_key_stability(self):
        a = ExperimentStore.key({"x": 1, "y": "z"})
        b = ExperimentStore.key({"y": "z", "x": 1})
        assert a == b
        assert a != ExperimentStore.key({"x": 2, "y": "z"})

    def test_put_get_cycle(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "runs"))
        key = store.key({"method": "fedtrip"})
        assert not store.has(key)
        store.put(key, _history(), {"method": "fedtrip"})
        assert store.has(key)
        assert len(store.get(key)) == 5
        assert store.config(key)["method"] == "fedtrip"
        assert list(store.keys()) == [key]

    def test_missing_key_raises(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "runs"))
        with pytest.raises(KeyError):
            store.get("deadbeef")


class TestCLI:
    def test_profile_command(self, capsys):
        assert main(["profile", "--dataset", "mnist", "--model", "cnn"]) == 0
        out = capsys.readouterr().out
        assert '"classes": 10' in out
        assert "params_m" in out

    def test_theory_command(self, capsys):
        assert main(["theory", "--mu", "6.0", "--p", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "rho_fedprox" in out
        assert "E[xi]" in out

    def test_partition_command(self, capsys):
        assert main([
            "partition", "--dataset", "tiny", "--clients", "4",
            "--clients-per-round", "2", "--partition", "dirichlet",
        ]) == 0
        out = capsys.readouterr().out
        assert "client  0" in out
        assert "mean_classes_per_client" in out

    def test_train_command(self, tmp_path, capsys):
        out_path = str(tmp_path / "hist.json")
        code = main([
            "train", "--dataset", "tiny", "--model", "mlp", "--method", "fedtrip",
            "--clients", "4", "--clients-per-round", "2", "--rounds", "2",
            "--batch-size", "20", "--target", "20", "--out", out_path,
        ])
        assert code == 0
        assert os.path.exists(out_path)
        assert len(json.load(open(out_path))["records"]) == 2
        assert "best accuracy" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--dataset", "tiny", "--model", "mlp",
            "--methods", "fedavg", "fedtrip",
            "--clients", "4", "--clients-per-round", "2", "--rounds", "2",
            "--batch-size", "20",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fedtrip" in out and "fedavg" in out

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
