"""Algorithm 1 conformance: an independent re-implementation of a FedTrip
round must reproduce the framework's weights exactly.

This is the strongest correctness test in the suite: it re-implements the
paper's Algorithm 1 with nothing but the nn substrate (no Strategy, no
Client/Server machinery) and checks bit-level agreement with the
Simulation over two rounds — covering line 4 (init from the global model +
historical load), lines 5-8 (per-batch loss, triplet gradient, SGDm
update), line 11 (upload) and line 12 (weighted aggregation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FLConfig, Simulation
from repro.algorithms import FedTrip
from repro.data import build_federated_data
from repro.fl.sampling import FixedSampler
from repro.models import build_mlp
from repro.nn.losses import CrossEntropyLoss
from repro.utils.rng import RngStream

MU = 0.3
LR = 0.05
MOMENTUM = 0.9
BATCH = 20
ROUNDS = 2
SCHEDULE = [[0, 2], [0, 3]]  # client 0 participates twice: xi=1 in round 1


def _manual_fedtrip(data, config):
    """Reference implementation of Algorithm 1 with SGDm as U."""
    root = RngStream(config.seed)
    model = build_mlp(data.spec.input_shape, data.spec.num_classes,
                      rng=root.child("model-init").generator)
    criterion = CrossEntropyLoss()
    w_glob = model.get_weights()
    historical = {}
    last_round = {}

    for t in range(ROUNDS):
        selected = SCHEDULE[t]
        uploads = {}
        for cid in selected:
            shard = data.client_dataset(cid)
            model.set_weights(w_glob)
            model.train()
            velocity = [np.zeros_like(p.data) for p in model.parameters()]
            # xi per the paper: gap since last participation, 0 if fresh.
            if cid in historical:
                xi = max(t - last_round[cid], 1)
                w_hist = historical[cid]
            else:
                xi, w_hist = 0, None
            # Batch order must match the framework's client rng stream.
            batch_rng = RngStream(config.seed).child("client", cid).child(
                "batches", t).generator
            order = batch_rng.permutation(len(shard))
            for start in range(0, len(shard), BATCH):
                idx = order[start:start + BATCH]
                xb, yb = shard.x[idx], shard.y[idx]
                logits = model(xb)
                _, dlogits = criterion(logits, yb)
                model.zero_grad()
                model.backward(dlogits)
                params = model.parameters()
                for i, p in enumerate(params):
                    h = p.grad + MU * (p.data - w_glob[i])
                    if xi > 0:
                        h = h + MU * xi * (w_hist[i] - p.data)
                    velocity[i] = MOMENTUM * velocity[i] + h
                    p.data -= LR * velocity[i]
            uploads[cid] = (model.get_weights(), len(shard))
            historical[cid] = model.get_weights()
            last_round[cid] = t
        total = sum(n for _, n in uploads.values())
        w_glob = [
            sum(w[i] * (n / total) for w, n in uploads.values())
            for i in range(len(w_glob))
        ]
        w_glob = [np.asarray(w, dtype=np.float32) for w in w_glob]
    return w_glob


@pytest.fixture(scope="module")
def conformance_data():
    return build_federated_data("tiny", n_clients=4, partition="dirichlet",
                                alpha=0.5, seed=0)


class TestAlgorithm1Conformance:
    def test_two_rounds_bitwise(self, conformance_data):
        config = FLConfig(rounds=ROUNDS, n_clients=4, clients_per_round=2,
                          batch_size=BATCH, lr=LR, momentum=MOMENTUM, seed=0)
        sim = Simulation(conformance_data, FedTrip(mu=MU), config,
                         model_name="mlp",
                         sampler=FixedSampler(SCHEDULE, n_clients=4))
        sim.run()
        framework = sim.server.weights
        sim.close()

        manual = _manual_fedtrip(conformance_data, config)
        for i, (a, b) in enumerate(zip(framework, manual)):
            np.testing.assert_allclose(
                a, b, atol=1e-6,
                err_msg=f"layer {i} diverges from the Algorithm 1 reference",
            )

    def test_divergence_detector_detects_changes(self, conformance_data):
        """Sanity: the reference is actually sensitive — a different mu
        must NOT match."""
        config = FLConfig(rounds=ROUNDS, n_clients=4, clients_per_round=2,
                          batch_size=BATCH, lr=LR, momentum=MOMENTUM, seed=0)
        sim = Simulation(conformance_data, FedTrip(mu=MU * 2), config,
                         model_name="mlp",
                         sampler=FixedSampler(SCHEDULE, n_clients=4))
        sim.run()
        framework = sim.server.weights
        sim.close()
        manual = _manual_fedtrip(conformance_data, config)
        assert any(
            not np.allclose(a, b, atol=1e-6) for a, b in zip(framework, manual)
        )
