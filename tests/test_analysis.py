"""Theory calculator, toy trajectories, PCA and t-SNE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ConvergenceComparison,
    QuadraticClient,
    ToyFLProblem,
    compare_fedprox_fedtrip,
    expected_xi,
    pca,
    rho,
    rho_positive,
    simulate_toy,
    staleness_distribution,
    suggested_mu,
    tsne,
)


class TestTheory:
    def test_expected_xi_limits(self):
        assert expected_xi(1.0) == 1.0
        assert expected_xi(1e-9) < 1e-6

    def test_expected_xi_monotone(self):
        """Paper: E[xi] = p ln p/(p-1) is monotonically increasing in p."""
        ps = np.linspace(0.01, 1.0, 50)
        vals = [expected_xi(p) for p in ps]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_expected_xi_known_value(self):
        # p=0.4 (paper's 4-of-10): 0.4 ln 0.4 / (-0.6)
        assert expected_xi(0.4) == pytest.approx(0.4 * np.log(0.4) / (0.4 - 1.0))

    def test_expected_xi_domain(self):
        with pytest.raises(ValueError):
            expected_xi(0.0)
        with pytest.raises(ValueError):
            expected_xi(1.5)

    def test_rho_gamma_zero_form(self):
        """rho(gamma=0) = 1/mu - LB/mu^2 - LB^2/(2 mu^2)."""
        mu, L, B = 6.0, 1.0, 1.0
        assert rho(mu, L, B) == pytest.approx(1 / mu - L * B / mu**2 - L * B**2 / (2 * mu**2))

    def test_suggested_mu_makes_rho_positive(self):
        for L in (0.5, 1.0, 3.0):
            for B in (1.0, 2.0):
                assert rho_positive(suggested_mu(L, B), L, B)

    def test_small_mu_breaks_descent(self):
        assert not rho_positive(0.01, 1.0, 2.0)

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            rho(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            rho(1.0, 1.0, 1.0, gamma=1.0)

    def test_staleness_distribution_is_geometric(self):
        dist = staleness_distribution(0.4, max_rounds=500)
        total = sum(dist.values())
        assert total == pytest.approx(1.0, abs=1e-8)
        mean = sum(s * p for s, p in dist.items())
        assert mean == pytest.approx(1 / 0.4, abs=1e-3)

    def test_comparison_same_rho_extra_qt(self):
        cmp = compare_fedprox_fedtrip(mu=6.0, L=1.0, B=1.0, participation_rate=0.4)
        assert cmp.rho_fedprox == cmp.rho_fedtrip
        assert cmp.qt_coefficient > 0
        assert cmp.fedtrip_strictly_faster
        assert cmp.summary()["fedtrip_strictly_faster"] == 1.0


class TestToy:
    def test_quadratic_client_validation(self):
        with pytest.raises(ValueError):
            QuadraticClient(np.zeros(2), np.array([[1.0, 2.0], [0.0, 1.0]]))  # asymmetric
        with pytest.raises(ValueError):
            QuadraticClient(np.zeros(2), -np.eye(2))  # not PD

    def test_global_optimum_closed_form(self):
        prob = ToyFLProblem.two_client(separation=2.0)
        w_star = prob.global_optimum()
        # Gradient of the summed objective vanishes at w*.
        g = sum(c.grad(w_star) for c in prob.clients)
        np.testing.assert_allclose(g, 0.0, atol=1e-10)

    def test_iid_case_optima_coincide(self):
        prob = ToyFLProblem.two_client(separation=0.0)
        np.testing.assert_allclose(prob.clients[0].optimum, prob.clients[1].optimum)

    def test_all_methods_converge_toward_optimum(self):
        prob = ToyFLProblem.two_client(separation=2.0)
        for method in ("fedavg", "fedprox", "fedtrip"):
            out = simulate_toy(prob, method=method, rounds=40, local_steps=3, lr=0.1)
            d = out["distance_to_optimum"]
            assert d[-1] < d[0] * 0.5, f"{method} failed to approach optimum"

    def test_fedtrip_uses_history(self):
        """FedTrip trajectories must differ from FedProx after round 1."""
        prob = ToyFLProblem.two_client(separation=2.0)
        prox = simulate_toy(prob, "fedprox", rounds=5, mu=0.5)
        trip = simulate_toy(prob, "fedtrip", rounds=5, mu=0.5, xi=1.0)
        np.testing.assert_allclose(
            prox["global_trajectory"][1], trip["global_trajectory"][1], atol=1e-12
        )
        assert not np.allclose(prox["global_trajectory"][3], trip["global_trajectory"][3])

    def test_trajectory_shapes(self):
        prob = ToyFLProblem.two_client()
        out = simulate_toy(prob, rounds=4, local_steps=3)
        assert out["global_trajectory"].shape == (5, 2)
        assert len(out["local_trajectories"]) == 4
        assert len(out["local_trajectories"][0][0]) == 4  # init + 3 steps

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            simulate_toy(ToyFLProblem.two_client(), method="adam")


class TestPCA:
    def test_recovers_dominant_direction(self, rng):
        direction = np.array([3.0, 4.0]) / 5.0
        t = rng.standard_normal(200)
        x = np.outer(t, direction) + 0.01 * rng.standard_normal((200, 2))
        proj, ratio = pca(x, 1)
        assert ratio[0] > 0.99
        # Projection should correlate almost perfectly with t.
        corr = abs(np.corrcoef(proj[:, 0], t)[0, 1])
        assert corr > 0.999

    def test_shapes(self, rng):
        proj, ratio = pca(rng.standard_normal((30, 8)), 3)
        assert proj.shape == (30, 3)
        assert ratio.shape == (3,)

    def test_1d_input_rejected(self, rng):
        with pytest.raises(ValueError):
            pca(rng.standard_normal(10), 2)


class TestTSNE:
    def test_separates_well_separated_clusters(self, rng):
        """Two far-apart Gaussian blobs must stay separable in the embedding."""
        a = rng.standard_normal((30, 10)) + 20.0
        b = rng.standard_normal((30, 10)) - 20.0
        x = np.vstack([a, b])
        y = tsne(x, perplexity=10, iterations=150, seed=0)
        da = y[:30].mean(axis=0)
        db = y[30:].mean(axis=0)
        spread = max(y[:30].std(), y[30:].std())
        assert np.linalg.norm(da - db) > 2 * spread

    def test_output_shape(self, rng):
        y = tsne(rng.standard_normal((25, 6)), iterations=50)
        assert y.shape == (25, 2)
        assert np.isfinite(y).all()

    def test_too_few_points(self, rng):
        with pytest.raises(ValueError):
            tsne(rng.standard_normal((3, 4)))

    def test_deterministic(self, rng):
        x = rng.standard_normal((20, 5))
        y1 = tsne(x, iterations=50, seed=1)
        y2 = tsne(x, iterations=50, seed=1)
        np.testing.assert_array_equal(y1, y2)
