"""Shape, mode and bookkeeping behaviour of individual layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TestLinear:
    def test_output_shape(self, rng):
        layer = nn.Linear(8, 3, rng=rng)
        out = layer(rng.standard_normal((5, 8)).astype(np.float32))
        assert out.shape == (5, 3)
        assert layer.output_shape((8,)) == (3,)

    def test_wrong_input_raises(self, rng):
        layer = nn.Linear(8, 3, rng=rng)
        with pytest.raises(ValueError):
            layer(rng.standard_normal((5, 7)).astype(np.float32))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)

    def test_backward_without_forward_raises(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 2), dtype=np.float32))

    def test_eval_mode_does_not_cache(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        layer.eval()
        layer(rng.standard_normal((3, 4)).astype(np.float32))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((3, 2), dtype=np.float32))

    def test_flops(self, rng):
        layer = nn.Linear(10, 5, rng=rng)
        assert layer.forward_flops((10,)) == 2 * 10 * 5 + 5

    def test_grad_accumulates(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        x = rng.standard_normal((3, 4)).astype(np.float32)
        d = np.ones((3, 2), dtype=np.float32)
        layer(x)
        layer.backward(d)
        g1 = layer.weight.grad.copy()
        layer(x)
        layer.backward(d)
        np.testing.assert_allclose(layer.weight.grad, 2 * g1, rtol=1e-5)


class TestConv2d:
    def test_output_shape(self, rng):
        conv = nn.Conv2d(3, 8, 5, padding=2, rng=rng)
        out = conv(rng.standard_normal((2, 3, 12, 12)).astype(np.float32))
        assert out.shape == (2, 8, 12, 12)
        assert conv.output_shape((3, 12, 12)) == (8, 12, 12)

    def test_channel_mismatch_raises(self, rng):
        conv = nn.Conv2d(3, 8, 3, rng=rng)
        with pytest.raises(ValueError):
            conv(rng.standard_normal((2, 1, 8, 8)).astype(np.float32))

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            nn.Conv2d(1, 1, 0)
        with pytest.raises(ValueError):
            nn.Conv2d(1, 1, 3, stride=0)

    def test_flops_positive_and_scales(self, rng):
        small = nn.Conv2d(1, 2, 3, rng=rng).forward_flops((1, 8, 8))
        big = nn.Conv2d(1, 4, 3, rng=rng).forward_flops((1, 8, 8))
        assert big == 2 * small


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = nn.MaxPool2d(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = nn.AvgPool2d(2)(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        pool = nn.MaxPool2d(2)
        pool(x)
        dx = pool.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
        expected = np.zeros((4, 4))
        for (i, j) in [(1, 1), (1, 3), (3, 1), (3, 3)]:
            expected[i, j] = 1.0
        np.testing.assert_array_equal(dx[0, 0], expected)

    def test_avgpool_backward_spreads(self):
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        pool = nn.AvgPool2d(2)
        pool(x)
        dx = pool.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
        np.testing.assert_allclose(dx, 0.25)

    def test_output_shapes(self):
        assert nn.MaxPool2d(2).output_shape((3, 8, 8)) == (3, 4, 4)
        assert nn.AvgPool2d(3, stride=2).output_shape((1, 7, 7)) == (1, 3, 3)


class TestActivations:
    def test_relu_clips(self):
        x = np.array([[-1.0, 0.5]], dtype=np.float32)
        np.testing.assert_array_equal(nn.ReLU()(x), [[0.0, 0.5]])

    def test_leaky_relu_slope(self):
        x = np.array([[-2.0, 2.0]], dtype=np.float32)
        np.testing.assert_allclose(nn.LeakyReLU(0.1)(x), [[-0.2, 2.0]])

    def test_tanh_range(self, rng):
        out = nn.Tanh()(rng.standard_normal((3, 4)).astype(np.float32) * 10)
        assert (np.abs(out) <= 1).all()

    def test_sigmoid_range(self, rng):
        out = nn.Sigmoid()(rng.standard_normal((3, 4)).astype(np.float32) * 10)
        assert ((out > 0) & (out < 1)).all()


class TestDropout:
    def test_eval_is_identity(self, rng):
        x = rng.standard_normal((4, 5)).astype(np.float32)
        drop = nn.Dropout(0.5, rng=rng)
        drop.eval()
        np.testing.assert_array_equal(drop(x), x)

    def test_train_scales_survivors(self, rng):
        x = np.ones((2000, 10), dtype=np.float32)
        drop = nn.Dropout(0.5, rng=rng)
        out = drop(x)
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)
        # Keep rate should be near 0.5.
        assert abs((out != 0).mean() - 0.5) < 0.05

    def test_p_zero_identity_in_train(self, rng):
        x = rng.standard_normal((4, 5)).astype(np.float32)
        np.testing.assert_array_equal(nn.Dropout(0.0)(x), x)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_backward_uses_same_mask(self, rng):
        drop = nn.Dropout(0.5, rng=rng)
        x = np.ones((6, 6), dtype=np.float32)
        out = drop(x)
        dx = drop.backward(np.ones_like(x))
        np.testing.assert_array_equal(dx != 0, out != 0)


class TestBatchNorm:
    def test_normalizes_batch(self, rng):
        bn = nn.BatchNorm1d(5)
        x = (rng.standard_normal((64, 5)) * 3 + 7).astype(np.float32)
        out = bn(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_track(self, rng):
        bn = nn.BatchNorm1d(3)
        x = (rng.standard_normal((256, 3)) + 5).astype(np.float32)
        for _ in range(50):
            bn(x)
        np.testing.assert_allclose(bn.running_mean, x.mean(axis=0), atol=0.1)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm1d(3)
        x = rng.standard_normal((64, 3)).astype(np.float32)
        bn(x)
        bn.eval()
        y = rng.standard_normal((4, 3)).astype(np.float32)
        out = bn(y)
        expected = (y - bn.running_mean) / np.sqrt(bn.running_var + bn.eps)
        np.testing.assert_allclose(out, expected, atol=1e-5)

    def test_bn2d_per_channel(self, rng):
        bn = nn.BatchNorm2d(2)
        x = rng.standard_normal((8, 2, 4, 4)).astype(np.float32)
        out = bn(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)

    def test_bn_params_are_trainable(self):
        bn = nn.BatchNorm1d(4)
        names = [n for n, _ in bn.named_parameters()]
        assert set(names) == {"gamma", "beta"}

    def test_wrong_ndim_raises(self, rng):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(4)(rng.standard_normal((2, 4, 3)).astype(np.float32))
        with pytest.raises(ValueError):
            nn.BatchNorm2d(4)(rng.standard_normal((2, 4)).astype(np.float32))


class TestSequential:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nn.Sequential()

    def test_indexing_and_len(self, rng):
        seq = nn.Sequential(nn.Linear(4, 3, rng=rng), nn.ReLU())
        assert len(seq) == 2
        assert isinstance(seq[1], nn.ReLU)

    def test_shape_propagation(self, rng):
        seq = nn.Sequential(
            nn.Conv2d(1, 2, 3, padding=1, rng=rng), nn.MaxPool2d(2), nn.Flatten()
        )
        assert seq.output_shape((1, 8, 8)) == (2 * 4 * 4,)

    def test_flops_sum(self, rng):
        l1 = nn.Linear(4, 8, rng=rng)
        l2 = nn.Linear(8, 2, rng=rng)
        seq = nn.Sequential(l1, l2)
        assert seq.forward_flops((4,)) == l1.forward_flops((4,)) + l2.forward_flops((8,))
