"""Coverage for small public APIs not exercised elsewhere."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.fl import DeviceProfile, SystemModel
from repro.fl.types import ClientUpdate
from repro.utils.logging import get_logger, set_verbosity


class TestStragglerAccounting:
    def _upd(self, cid, flops=1e9, comm=1e6):
        return ClientUpdate(cid, [np.zeros(2, dtype=np.float32)], 10, 0.0,
                            flops=flops, comm_bytes=comm)

    def test_straggler_counts(self):
        model = SystemModel("wifi", n_clients=3)
        model.profiles[1] = DeviceProfile(flops_per_second=1e5, bandwidth_bps=50e6)
        for _ in range(4):
            model.observe([self._upd(0), self._upd(1)], None)
        counts = model.straggler_counts()
        assert counts == {1: 4}

    def test_round_time_decomposition(self):
        model = SystemModel("4g", n_clients=2, heterogeneity=1.0)
        model.observe([self._upd(0)], None)
        rt = model.round_times[0]
        assert rt.total_s == pytest.approx(rt.compute_s + rt.comm_s)
        assert rt.round_idx == 0

    def test_cumulative_seconds_monotone(self):
        model = SystemModel("wifi", n_clients=2, heterogeneity=1.0)
        for _ in range(5):
            model.observe([self._upd(0)], None)
        cum = model.cumulative_seconds()
        assert (np.diff(cum) > 0).all()

    def test_time_to_accuracy_none_when_missed(self):
        from repro.fl.history import History
        from repro.fl.types import RoundRecord

        model = SystemModel("wifi", n_clients=1, heterogeneity=1.0)
        model.observe([self._upd(0)], None)
        hist = History()
        hist.append(RoundRecord(0, [0], 10.0, 1.0, 1.0, 1.0, 1.0, 0.1))
        assert model.time_to_accuracy(hist, 99.0) is None


class TestLoggingFacade:
    def test_logger_namespacing(self):
        assert get_logger("fl").name == "repro.fl"
        assert get_logger().name == "repro"

    def test_set_verbosity_idempotent(self):
        set_verbosity(logging.INFO)
        set_verbosity(logging.DEBUG)
        root = logging.getLogger("repro")
        stream_handlers = [h for h in root.handlers
                           if isinstance(h, logging.StreamHandler)]
        assert len(stream_handlers) == 1
        assert root.level == logging.DEBUG


class TestHistorySerialization:
    def test_to_dict_structure(self):
        from repro.fl.history import History
        from repro.fl.types import RoundRecord

        h = History()
        h.append(RoundRecord(0, [1, 2], 50.0, 0.5, 1.0, 1e9, 1e6, 0.2))
        d = h.to_dict()
        assert list(d) == ["records", "stop_reason"]
        assert d["stop_reason"] is None
        rec = d["records"][0]
        assert rec["round"] == 0 and rec["selected"] == [1, 2]

    def test_empty_history_totals(self):
        from repro.fl.history import History

        h = History()
        assert h.total_gflops() == 0.0
        assert h.total_comm_mb() == 0.0
        assert np.isnan(h.best_accuracy())


class TestRoundRecordDict:
    def test_round_trip_keys(self):
        from repro.fl.types import RoundRecord

        rec = RoundRecord(3, [0], 88.5, 0.3, 0.9, 5e9, 2e6, 1.5)
        d = rec.to_dict()
        assert d["round"] == 3
        assert d["test_accuracy"] == 88.5
        assert set(d) == {
            "round", "selected", "test_accuracy", "test_loss",
            "mean_train_loss", "cumulative_flops", "cumulative_comm_bytes",
            "wall_seconds", "virtual_time_s", "update_staleness",
            "dropped_clients", "screened_clients", "adversary_clients",
            "round_skipped", "phase_seconds",
            "failed_clients", "retried_clients", "skip_reason",
        }
        # Virtual-clock fields default to None so sync-without-profile
        # histories serialize exactly as before (modulo the new keys).
        assert d["virtual_time_s"] is None and d["update_staleness"] is None
        # Aggregation-health fields default to empty/None/False likewise.
        assert d["dropped_clients"] == [] and d["screened_clients"] == []
        assert d["adversary_clients"] is None and d["round_skipped"] is False
