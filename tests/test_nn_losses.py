"""Loss semantics beyond the numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.functional import one_hot, softmax


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = one_hot(np.array([0, 1, 2]), 3) * 50.0
        loss, _ = nn.CrossEntropyLoss()(logits, np.array([0, 1, 2]))
        assert loss < 1e-6

    def test_uniform_logits_log_c(self):
        logits = np.zeros((5, 4), dtype=np.float32)
        loss, _ = nn.CrossEntropyLoss()(logits, np.zeros(5, dtype=np.int64))
        np.testing.assert_allclose(loss, np.log(4), atol=1e-6)

    def test_grad_rows_sum_to_zero(self, rng):
        logits = rng.standard_normal((6, 5)).astype(np.float32)
        _, grad = nn.CrossEntropyLoss()(logits, rng.integers(0, 5, 6))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-6)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss()(rng.standard_normal((3,)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss()(rng.standard_normal((3, 2)), np.zeros(4, dtype=int))


class TestMSE:
    def test_zero_at_equality(self, rng):
        x = rng.standard_normal((3, 4))
        loss, grad = nn.MSELoss()(x, x.copy())
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_known_value(self):
        loss, _ = nn.MSELoss()(np.ones((2, 2)), np.zeros((2, 2)))
        assert loss == 1.0


class TestKLDiv:
    def test_zero_when_identical(self, rng):
        logits = rng.standard_normal((4, 5))
        loss, grad = nn.KLDivLoss(2.0)(logits, logits.copy())
        assert abs(loss) < 1e-8
        np.testing.assert_allclose(grad, 0.0, atol=1e-8)

    def test_nonnegative(self, rng):
        for _ in range(5):
            s = rng.standard_normal((4, 5))
            t = rng.standard_normal((4, 5))
            loss, _ = nn.KLDivLoss(1.0)(s, t)
            assert loss >= -1e-9

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            nn.KLDivLoss(0.0)


class TestModelContrastive:
    def test_prefers_global_alignment(self, rng):
        z_glob = rng.standard_normal((4, 8))
        z_prev = rng.standard_normal((4, 8))
        loss_aligned, _ = nn.ModelContrastiveLoss(0.5)(z_glob.copy(), z_glob, z_prev)
        loss_misaligned, _ = nn.ModelContrastiveLoss(0.5)(z_prev.copy(), z_glob, z_prev)
        assert loss_aligned < loss_misaligned

    def test_symmetric_inputs_give_log2(self, rng):
        z = rng.standard_normal((4, 8))
        ref = rng.standard_normal((4, 8))
        loss, _ = nn.ModelContrastiveLoss(0.5)(z, ref, ref.copy())
        np.testing.assert_allclose(loss, np.log(2), atol=1e-6)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            nn.ModelContrastiveLoss()(
                rng.standard_normal((4, 8)),
                rng.standard_normal((4, 8)),
                rng.standard_normal((3, 8)),
            )


class TestTripletSample:
    def test_satisfied_triplet_zero_loss(self):
        a = np.zeros((2, 3))
        p = np.zeros((2, 3))
        n = np.ones((2, 3)) * 10
        loss, grad = nn.TripletSampleLoss(1.0)(a, p, n)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_violating_triplet_positive_loss(self):
        a = np.zeros((1, 3))
        p = np.ones((1, 3))
        n = np.zeros((1, 3))
        loss, _ = nn.TripletSampleLoss(1.0)(a, p, n)
        assert loss > 0

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            nn.TripletSampleLoss(-1.0)
