"""Per-algorithm correctness: gradient math, state handling, reductions.

The key technique: run one client round with a strategy, and independently
recompute what the weights *should* be from the algorithm's published update
rule, using the same batches and initial weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    FedAvg,
    FedDyn,
    FedProx,
    FedTrip,
    MOON,
    SlowMo,
    SCAFFOLD,
    available_strategies,
    build_strategy,
    paper_defaults,
)
from repro.fl import FLConfig, Simulation


def _run(data, strategy, config, rounds=None, **kw):
    cfg = config
    sim = Simulation(data, strategy, cfg, model_name="mlp", **kw)
    hist = sim.run()
    sim.close()
    return sim, hist


class TestRegistry:
    def test_all_strategies_constructible(self):
        for name in available_strategies():
            s = build_strategy(name)
            assert s.name == name

    def test_paper_defaults_fedtrip(self):
        assert paper_defaults("fedtrip", model="mlp")["mu"] == 1.0
        assert paper_defaults("fedtrip", model="cnn")["mu"] == 0.4

    def test_paper_defaults_feddyn(self):
        assert paper_defaults("feddyn", dataset="mnist")["alpha"] == 1.0
        assert paper_defaults("feddyn", dataset="cifar10")["alpha"] == 0.1
        assert paper_defaults("feddyn", dataset="mini_mnist")["alpha"] == 1.0

    def test_overrides_win(self):
        s = build_strategy("fedtrip", mu=2.5)
        assert s.mu == 2.5

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            build_strategy("fedsgd9000")

    def test_describe_rows(self):
        """Table I: FedTrip = sufficient info + low cost; MOON = high cost."""
        assert build_strategy("fedtrip").describe()["information_utilization"] == "sufficient"
        assert build_strategy("fedtrip").describe()["resource_cost"] == "low"
        assert build_strategy("moon").describe()["resource_cost"] == "high"
        assert build_strategy("fedprox").describe()["information_utilization"] == "insufficient"


class TestFedTripMath:
    def test_mu_zero_equals_fedavg(self, tiny_data, small_config):
        _, h_trip = _run(tiny_data, FedTrip(mu=0.0), small_config)
        _, h_avg = _run(tiny_data, FedAvg(), small_config)
        np.testing.assert_allclose(h_trip.accuracies(), h_avg.accuracies(), atol=1e-5)

    def test_first_round_equals_fedprox(self, tiny_data):
        """With no history yet, FedTrip's gradient term reduces to FedProx's
        proximal term (same mu), so round 1 must match exactly."""
        cfg = FLConfig(rounds=1, n_clients=6, clients_per_round=3, batch_size=20, seed=4)
        _, h_trip = _run(tiny_data, FedTrip(mu=0.3), cfg)
        _, h_prox = _run(tiny_data, FedProx(mu=0.3), cfg)
        np.testing.assert_allclose(h_trip.accuracies(), h_prox.accuracies(), atol=1e-6)

    def test_diverges_from_fedprox_once_history_exists(self, tiny_data):
        cfg = FLConfig(rounds=6, n_clients=6, clients_per_round=3, batch_size=20, seed=4)
        _, h_trip = _run(tiny_data, FedTrip(mu=0.3), cfg)
        _, h_prox = _run(tiny_data, FedProx(mu=0.3), cfg)
        assert not np.allclose(h_trip.accuracies()[3:], h_prox.accuracies()[3:], atol=1e-6)

    def test_xi_is_staleness(self, tiny_data):
        """xi must equal the gap since last participation."""
        strat = FedTrip(mu=0.4)
        state = strat.init_client_state(0)
        assert state == {"historical": None, "last_round": None}

        class FakeCtx:
            round_idx = 7
            state = {"historical": ["x"], "last_round": 3}
            xi_measured = None

        assert strat._xi(FakeCtx()) == 4.0

        class FreshCtx:
            round_idx = 7
            state = {"historical": None, "last_round": None}
            xi_measured = None

        assert strat._xi(FreshCtx()) == 0.0

    def test_xi_constant_mode(self):
        strat = FedTrip(mu=0.4, xi_mode="constant", xi_value=0.7)

        class Ctx:
            round_idx = 9
            state = {"historical": ["x"], "last_round": 1}
            xi_measured = None

        assert strat._xi(Ctx()) == 0.7

    def test_xi_normalized_mode(self):
        strat = FedTrip(mu=0.4, xi_mode="normalized", participation_rate=0.4)

        class Ctx:
            round_idx = 6
            state = {"historical": ["x"], "last_round": 1}
            xi_measured = None

        assert strat._xi(Ctx()) == pytest.approx(5 * 0.4)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            FedTrip(mu=-1.0)
        with pytest.raises(ValueError):
            FedTrip(xi_mode="bogus")
        with pytest.raises(ValueError):
            FedTrip(xi_mode="normalized")

    def test_historical_state_updated_each_round(self, tiny_data, small_config):
        sim = Simulation(tiny_data, FedTrip(mu=0.4), small_config, model_name="mlp")
        sim.run()
        participated = {c for rec in sim.history.records for c in rec.selected}
        for cid in participated:
            st = sim.clients[cid].state
            assert st["historical"] is not None
            assert st["last_round"] is not None
        sim.close()

    def test_gradient_formula_manual(self, rng):
        """modify_gradients must add exactly mu((w-wg) + xi(wh-w))."""
        from repro.algorithms.base import ClientRoundContext
        from repro.models import build_mlp
        from repro.nn.losses import CrossEntropyLoss
        from repro.optim import SGD

        model = build_mlp((1, 2, 2), 2, hidden=3, rng=rng)
        wg = [w + 0.1 for w in model.get_weights()]
        wh = [w - 0.2 for w in model.get_weights()]
        strat = FedTrip(mu=0.5)
        ctx = ClientRoundContext(
            client_id=0, round_idx=5, global_weights=wg, model=model, frozen=model,
            optimizer=SGD(model.parameters(), lr=0.1),
            criterion=CrossEntropyLoss(),
            config=FLConfig(rounds=1, n_clients=1, clients_per_round=1),
            state={"historical": wh, "last_round": 2},
            rng=rng, n_samples=10, fp_flops_per_sample=1.0,
        )
        strat.on_round_start(ctx)
        assert ctx.scratch["xi"] == 3.0
        model.zero_grad()
        strat.modify_gradients(ctx)
        for p, g, h in zip(model.parameters(), wg, wh):
            expected = 0.5 * ((p.data - g) + 3.0 * (h - p.data))
            np.testing.assert_allclose(p.grad, expected, atol=1e-6)


class TestFedProxMath:
    def test_mu_zero_equals_fedavg(self, tiny_data, small_config):
        _, h_prox = _run(tiny_data, FedProx(mu=0.0), small_config)
        _, h_avg = _run(tiny_data, FedAvg(), small_config)
        np.testing.assert_allclose(h_prox.accuracies(), h_avg.accuracies(), atol=1e-6)

    def test_proximal_pull_shrinks_update(self, tiny_data):
        """Large mu must keep local models closer to the global model."""
        cfg = FLConfig(rounds=1, n_clients=6, clients_per_round=3, batch_size=20, seed=2)
        drifts = {}
        for mu in (0.0, 10.0):
            sim = Simulation(tiny_data, FedProx(mu=mu), cfg, model_name="mlp")
            init = [w.copy() for w in sim.server.weights]
            sim.run()
            drifts[mu] = sum(
                float(np.sum((a - b) ** 2)) for a, b in zip(sim.server.weights, init)
            )
            sim.close()
        assert drifts[10.0] < drifts[0.0]


class TestSlowMo:
    def test_beta_zero_equals_fedavg(self, tiny_data, small_config):
        """SlowMo(beta=0, slow_lr=1) reduces exactly to FedAvg with SGD."""
        cfg = FLConfig(rounds=3, n_clients=6, clients_per_round=3, batch_size=20,
                       seed=1, optimizer="sgd")
        _, h_slow = _run(tiny_data, SlowMo(beta=0.0, slow_lr=1.0), cfg)
        _, h_avg = _run(tiny_data, FedAvg(), cfg)
        np.testing.assert_allclose(h_slow.accuracies(), h_avg.accuracies(), atol=1e-5)

    def test_momentum_state_persists(self, tiny_data, small_config):
        sim = Simulation(tiny_data, SlowMo(beta=0.5), small_config, model_name="mlp")
        sim.run()
        u = sim.server.state["u"]
        assert any(np.abs(x).sum() > 0 for x in u)
        sim.close()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SlowMo(beta=1.0)
        with pytest.raises(ValueError):
            SlowMo(slow_lr=0.0)


class TestFedDyn:
    def test_h_state_updates(self, tiny_data, small_config):
        sim = Simulation(tiny_data, FedDyn(alpha=0.1), small_config, model_name="mlp")
        sim.run()
        assert any(np.abs(h).sum() > 0 for h in sim.server.state["h"])
        participated = {c for rec in sim.history.records for c in rec.selected}
        cid = next(iter(participated))
        assert sim.clients[cid].state["h_k"] is not None
        sim.close()

    def test_client_correction_formula(self, rng):
        """After a round, h_k must decrease by alpha*(w_k - w_glob)."""
        from repro.algorithms.base import ClientRoundContext
        from repro.models import build_mlp
        from repro.nn.losses import CrossEntropyLoss
        from repro.optim import SGD

        model = build_mlp((1, 2, 2), 2, hidden=3, rng=rng)
        wg = model.get_weights()
        strat = FedDyn(alpha=0.5)
        state = strat.init_client_state(0)
        ctx = ClientRoundContext(
            client_id=0, round_idx=0, global_weights=wg, model=model, frozen=model,
            optimizer=SGD(model.parameters(), lr=0.1), criterion=CrossEntropyLoss(),
            config=FLConfig(rounds=1, n_clients=1, clients_per_round=1),
            state=state, rng=rng, n_samples=10, fp_flops_per_sample=1.0,
        )
        strat.on_round_start(ctx)
        # Pretend training moved the weights.
        for p in model.parameters():
            p.data += 0.3
        strat.on_round_end(ctx)
        for hk in ctx.state["h_k"]:
            np.testing.assert_allclose(hk, -0.5 * 0.3, atol=1e-5)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            FedDyn(alpha=0.0)


class TestSCAFFOLD:
    def test_control_variates_sum_property(self, tiny_data, small_config):
        sim = Simulation(tiny_data, SCAFFOLD(), small_config, model_name="mlp")
        sim.run()
        # Server variate is a running average of client deltas: finite & nonzero.
        c = sim.server.state["c"]
        assert all(np.isfinite(x).all() for x in c)
        assert any(np.abs(x).sum() > 0 for x in c)
        sim.close()

    def test_client_uploads_delta(self, tiny_data, small_config):
        from repro.fl.sampling import FixedSampler

        sim = Simulation(
            tiny_data, SCAFFOLD(), small_config, model_name="mlp",
            sampler=FixedSampler([[0, 1, 2]], n_clients=6),
        )
        sim.run_round()
        assert sim.clients[0].state["c_k"] is not None
        sim.close()

    def test_variate_magnitude_reasonable(self, tiny_data, small_config):
        """c_k ~ (w_glob - w_k)/(K lr): bounded by drift/(K lr)."""
        sim = Simulation(tiny_data, SCAFFOLD(), small_config, model_name="mlp")
        sim.run()
        for h in sim.server.state["c"]:
            assert np.abs(h).max() < 100.0
        sim.close()


class TestMOON:
    def test_first_round_prev_falls_back_to_global(self, tiny_data):
        cfg = FLConfig(rounds=1, n_clients=6, clients_per_round=2, batch_size=20, seed=0)
        sim = Simulation(tiny_data, MOON(mu=1.0), cfg, model_name="mlp")
        sim.run()
        participated = {c for rec in sim.history.records for c in rec.selected}
        for cid in participated:
            assert sim.clients[cid].state["previous"] is not None
        sim.close()

    def test_mu_zero_close_to_fedavg(self, tiny_data, small_config):
        """mu=0 removes the contrastive gradient: identical to FedAvg."""
        _, h_moon = _run(tiny_data, MOON(mu=0.0), small_config)
        _, h_avg = _run(tiny_data, FedAvg(), small_config)
        np.testing.assert_allclose(h_moon.accuracies(), h_avg.accuracies(), atol=1e-4)

    def test_history_depth_guard(self):
        with pytest.raises(NotImplementedError):
            MOON(history_depth=2)


class TestPreambleStrategies:
    def test_feddane_runs_and_stores_agg(self, tiny_data, small_config):
        sim = Simulation(tiny_data, build_strategy("feddane"), small_config, model_name="mlp")
        sim.run_round()
        assert "g_agg" in sim.server.state
        sim.close()

    def test_mimelite_server_momentum(self, tiny_data, small_config):
        sim = Simulation(tiny_data, build_strategy("mimelite"), small_config, model_name="mlp")
        sim.run_round()
        assert "s" in sim.server.state
        s0 = [x.copy() for x in sim.server.state["s"]]
        sim.run_round()
        assert any(not np.array_equal(a, b) for a, b in zip(s0, sim.server.state["s"]))
        sim.close()

    def test_preamble_flops_charged(self, tiny_data, small_config):
        _, h_dane = _run(tiny_data, build_strategy("feddane"), small_config)
        _, h_avg = _run(tiny_data, FedAvg(), small_config)
        assert h_dane.flops()[-1] > h_avg.flops()[-1]


class TestFedGKD:
    def test_gamma_zero_close_to_fedavg(self, tiny_data, small_config):
        _, h_gkd = _run(tiny_data, build_strategy("fedgkd", gamma=0.0), small_config)
        _, h_avg = _run(tiny_data, FedAvg(), small_config)
        np.testing.assert_allclose(h_gkd.accuracies(), h_avg.accuracies(), atol=1e-4)

    def test_distillation_flops_charged(self, tiny_data, small_config):
        _, h_gkd = _run(tiny_data, build_strategy("fedgkd"), small_config)
        _, h_avg = _run(tiny_data, FedAvg(), small_config)
        # One extra forward of three base passes: ~ +1/3.
        assert h_gkd.flops()[-1] > 1.2 * h_avg.flops()[-1]
